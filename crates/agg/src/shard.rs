//! Sharded gradient accumulators with a deterministic merge.
//!
//! Checkins hash to one of N lock stripes by device id, so concurrent devices
//! almost never contend on the same lock, and the expensive O(d) work of a
//! checkin — summing its gradient into a running accumulator — happens under
//! the stripe lock, not a global one.
//!
//! Determinism: every stripe keeps a *per-device* running sum (a device's own
//! checkins are sequential, so that sum is reproducible), and [`ShardSet::drain`]
//! folds the per-device sums in ascending device-id order regardless of which
//! stripe held them. The merged [`EpochAggregate`] is therefore bitwise
//! identical to what a single-lock sequential accumulator would produce from
//! the same per-device contributions — shard count and thread interleaving
//! cannot change a single bit of the aggregate. Sparse checkins scatter-add
//! into the same accumulators (never densified), which is bitwise equivalent
//! because skipping an exact-zero addend cannot change an accumulator that
//! started at `+0.0`.
//!
//! Allocation: the parameter-dimension accumulators cycle through a small
//! buffer pool instead of being freshly allocated every epoch — ingest takes a
//! zeroed buffer from the pool, and the runtime returns the merged epoch's
//! storage (plus each device's drained accumulator) after the epoch is
//! applied.

use crowd_core::device::CheckinPayload;
use crowd_core::server::{CheckinOutcome, DeviceEpochStats, EpochAggregate};
use crowd_linalg::Vector;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Upper bound on pooled accumulator buffers; beyond this, drained buffers are
/// simply dropped (the pool exists to serve the steady state, not bursts).
const MAX_POOLED_BUFFERS: usize = 64;

/// Devices per leaf block of the fixed merge combine tree. A compile-time
/// constant on purpose: the tree *shape* is a function of the device count
/// alone, never of worker count or thread scheduling, so parallel and
/// sequential merges are bitwise identical by construction.
const MERGE_BLOCK: usize = 16;

/// Fan the merge out to threads only past this many summed elements
/// (`device count × param_dim`); below it, thread spawn overhead dominates.
/// Purely a latency knob — crossing it cannot change a single output bit,
/// because the combine tree is the same either way.
const PARALLEL_MERGE_MIN_ELEMS: usize = 1 << 18;

/// A checkin waiting for its epoch to be applied: the handler thread blocks on
/// the receiving half until the merge sends the outcome.
pub(crate) struct Waiter {
    pub(crate) checkout_iteration: u64,
    /// The submitting device, for recording the outcome in the dedup table.
    pub(crate) device_id: u64,
    /// The checkin's dedup nonce (0 = no dedup requested).
    pub(crate) nonce: u64,
    pub(crate) reply: mpsc::Sender<CheckinOutcome>,
    /// When the checkin was admitted, redeemed for `checkin_latency_us` at ack.
    pub(crate) submitted: crowd_telemetry::Tick,
}

/// Running per-device accumulation within the current epoch.
struct DeviceAccum {
    gradient_sum: Vector,
    checkins: u64,
    samples: u64,
    errors: i64,
    label_counts: Vec<i64>,
}

/// One lock stripe: per-device accumulators plus the epoch's pending waiters.
#[derive(Default)]
struct Shard {
    devices: BTreeMap<u64, DeviceAccum>,
    waiters: Vec<Waiter>,
    payloads: u64,
    min_checkout_iteration: u64,
}

/// Everything removed from the stripes by one [`ShardSet::drain`] call.
pub(crate) struct DrainedEpoch {
    /// The merged aggregate, or `None` when nothing was pending.
    pub(crate) epoch: Option<EpochAggregate>,
    /// The handler threads waiting on this epoch.
    pub(crate) waiters: Vec<Waiter>,
    /// Number of checkins merged.
    pub(crate) count: u64,
}

/// N independently locked gradient accumulators.
pub struct ShardSet {
    // audit:lock(agg.shard, 20)
    shards: Vec<Mutex<Shard>>,
    param_dim: usize,
    num_classes: usize,
    /// Recycled parameter-dimension buffers, shared by the per-device
    /// accumulators and the merge scratch.
    // audit:lock(agg.shard-scratch, 25)
    scratch: Mutex<Vec<Vec<f64>>>,
    /// Threads the epoch merge may fan block sums across (1 = sequential).
    merge_workers: usize,
    /// Minimum summed elements before the merge actually goes parallel.
    parallel_min_elems: usize,
}

impl ShardSet {
    /// Creates `shard_count` stripes for gradients of dimension `param_dim`.
    pub fn new(shard_count: usize, param_dim: usize, num_classes: usize) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    min_checkout_iteration: u64::MAX,
                    ..Shard::default()
                })
            })
            .collect();
        ShardSet {
            shards,
            param_dim,
            num_classes,
            scratch: Mutex::new(Vec::new()),
            merge_workers: 1,
            parallel_min_elems: PARALLEL_MERGE_MIN_ELEMS,
        }
    }

    /// Lets the epoch merge fan its fixed combine tree across up to `n`
    /// scoped threads. The tree shape never depends on `n`, so any worker
    /// count (including 1) produces the identical aggregate; this only cuts
    /// merge latency once an epoch is large enough to clear the
    /// parallelism threshold.
    pub fn with_merge_workers(mut self, n: usize) -> Self {
        self.merge_workers = n.max(1);
        self
    }

    /// Overrides the parallel-merge size threshold (elements = devices ×
    /// `param_dim`). Exposed for tests and tuning; values at or below 0 make
    /// every multi-block merge parallel.
    pub fn with_parallel_min_elems(mut self, elems: usize) -> Self {
        self.parallel_min_elems = elems;
        self
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A zeroed `param_dim` accumulator, reusing pooled storage when possible.
    fn take_zeroed(&self) -> Vector {
        let mut buf = self.scratch.lock().pop().unwrap_or_default();
        buf.clear();
        buf.resize(self.param_dim, 0.0);
        Vector::from_vec(buf)
    }

    /// Returns an accumulator's storage to the pool.
    fn put_back(&self, v: Vector) {
        let mut shelf = self.scratch.lock();
        if shelf.len() < MAX_POOLED_BUFFERS {
            shelf.push(v.into_vec());
        }
    }

    /// Recycles an applied epoch's merged gradient buffer so the next
    /// [`ShardSet::drain`] reuses it instead of allocating.
    pub(crate) fn recycle_epoch(&self, epoch: EpochAggregate) {
        self.put_back(epoch.gradient_sum);
    }

    /// Number of buffers currently parked in the pool (test hook).
    #[cfg(test)]
    fn pooled_buffers(&self) -> usize {
        self.scratch.lock().len()
    }

    /// Folds one (pre-validated) checkin into its device's stripe accumulator.
    ///
    /// A payload whose dimensions do not match the configured model is handed
    /// back with its waiter (`Err`) so the caller can fail that one checkin
    /// instead of panicking the worker — submit-time validation makes this
    /// unreachable in practice, but a poisoned worker would take the whole
    /// server down with it.
    pub(crate) fn ingest(
        &self,
        payload: &CheckinPayload,
        waiter: Waiter,
    ) -> std::result::Result<(), Waiter> {
        if payload.gradient.dim() != self.param_dim
            || payload.label_counts.len() != self.num_classes
        {
            return Err(waiter);
        }
        let idx = (payload.device_id % self.shards.len() as u64) as usize;
        let mut shard = self.shards[idx].lock();
        let accum = shard
            .devices
            .entry(payload.device_id)
            .or_insert_with(|| DeviceAccum {
                gradient_sum: self.take_zeroed(),
                checkins: 0,
                samples: 0,
                errors: 0,
                label_counts: vec![0; self.num_classes],
            });
        // Dense updates fold element-wise, sparse updates scatter-add — both
        // bitwise identical to `axpy(1.0, ·)` on these accumulators (skipping
        // an exact-zero addend is a no-op on a sum that started at `+0.0`).
        // The dimension check above and the pool invariant (accumulators are
        // always `param_dim`) make this unreachable; hand the checkin back
        // rather than panic the worker. `add_into` checks before mutating, so
        // the freshly inserted (or existing) accumulator is untouched on the
        // error path and no counter below has moved yet.
        if payload.gradient.add_into(&mut accum.gradient_sum).is_err() {
            return Err(waiter);
        }
        accum.checkins += 1;
        accum.samples += payload.num_samples as u64;
        accum.errors += payload.error_count;
        for (acc, &c) in accum
            .label_counts
            .iter_mut()
            .zip(payload.label_counts.iter())
        {
            *acc += c;
        }
        shard.payloads += 1;
        shard.min_checkout_iteration = shard.min_checkout_iteration.min(payload.checkout_iteration);
        shard.waiters.push(waiter);
        Ok(())
    }

    /// Sums one leaf block of the combine tree: device accumulators fold
    /// left-to-right (ascending device id) into a pool-zeroed buffer, and the
    /// drained per-device storage returns to the pool. Runs on the draining
    /// thread or a merge worker — the fold order is identical either way.
    fn block_sum(&self, block: Vec<(u64, DeviceAccum)>) -> (Vector, Vec<DeviceEpochStats>) {
        let mut sum = self.take_zeroed();
        let mut stats = Vec::with_capacity(block.len());
        for (device_id, accum) in block {
            // Accumulators are all created at `param_dim`, so the elementwise
            // fold is total; `+=` matches `axpy(1.0, ·)` bit for bit without
            // a fallible call in the merge path.
            crowd_linalg::kernels::add_assign(sum.as_mut_slice(), accum.gradient_sum.as_slice());
            self.put_back(accum.gradient_sum);
            stats.push(DeviceEpochStats {
                device_id,
                checkins: accum.checkins,
                samples: accum.samples,
                errors: accum.errors,
                label_counts: accum.label_counts,
            });
        }
        (sum, stats)
    }

    /// Takes everything accumulated so far and merges it into one epoch.
    ///
    /// Stripes are locked one at a time (their contents moved out), then the
    /// per-device sums are folded through a *fixed combine tree*: ascending
    /// device-id order, grouped into [`MERGE_BLOCK`]-sized leaf blocks whose
    /// sums fold left-to-right into the aggregate. The tree shape depends
    /// only on the device count — never on shard count, worker count, or
    /// thread interleaving — so the merged epoch is bitwise reproducible,
    /// and large epochs can compute their block sums on scoped threads
    /// (see [`ShardSet::with_merge_workers`]) with zero effect on the bits.
    pub(crate) fn drain(&self) -> DrainedEpoch {
        let mut combined: BTreeMap<u64, DeviceAccum> = BTreeMap::new();
        let mut waiters = Vec::new();
        let mut count = 0u64;
        let mut min_checkout = u64::MAX;
        for stripe in &self.shards {
            let mut shard = stripe.lock();
            if shard.payloads == 0 {
                continue;
            }
            count += shard.payloads;
            min_checkout = min_checkout.min(shard.min_checkout_iteration);
            combined.append(&mut shard.devices);
            waiters.append(&mut shard.waiters);
            shard.payloads = 0;
            shard.min_checkout_iteration = u64::MAX;
        }
        if count == 0 {
            return DrainedEpoch {
                epoch: None,
                waiters,
                count: 0,
            };
        }
        // Group the device-ordered accumulators into the tree's leaf blocks.
        let device_count = combined.len();
        let mut blocks: Vec<Vec<(u64, DeviceAccum)>> =
            Vec::with_capacity(device_count.div_ceil(MERGE_BLOCK));
        for entry in combined {
            match blocks.last_mut() {
                Some(block) if block.len() < MERGE_BLOCK => block.push(entry),
                _ => {
                    let mut block = Vec::with_capacity(MERGE_BLOCK);
                    block.push(entry);
                    blocks.push(block);
                }
            }
        }
        // Block sums land in order-preserving slots; whether a scoped worker
        // or this thread fills a slot cannot matter, because each block's
        // fold and the final left-to-right fold over slots are both fixed.
        let mut slots: Vec<Option<(Vector, Vec<DeviceEpochStats>)>> =
            blocks.iter().map(|_| None).collect();
        let workers = self.merge_workers.min(blocks.len()).max(1);
        if workers > 1 && device_count.saturating_mul(self.param_dim) >= self.parallel_min_elems {
            let per = blocks.len().div_ceil(workers);
            // Hand each worker an owned run of blocks plus the matching
            // `&mut` run of result slots (disjoint, so no locks needed).
            let mut groups: Vec<Vec<Vec<(u64, DeviceAccum)>>> = Vec::with_capacity(workers);
            let mut group = Vec::with_capacity(per);
            for block in blocks {
                group.push(block);
                if group.len() == per {
                    groups.push(std::mem::take(&mut group));
                    group = Vec::with_capacity(per);
                }
            }
            if !group.is_empty() {
                groups.push(group);
            }
            std::thread::scope(|scope| {
                let mut rest = slots.as_mut_slice();
                for group in groups {
                    let take = group.len().min(rest.len());
                    let (mine, tail) = std::mem::take(&mut rest).split_at_mut(take);
                    rest = tail;
                    scope.spawn(move || {
                        for (slot, block) in mine.iter_mut().zip(group) {
                            *slot = Some(self.block_sum(block));
                        }
                    });
                }
            });
        } else {
            for (slot, block) in slots.iter_mut().zip(blocks) {
                *slot = Some(self.block_sum(block));
            }
        }
        // Root fold, left to right over block sums. A single block (≤ 16
        // devices, the common small-epoch case) short-circuits: its sum IS
        // the aggregate, with no extra zero-buffer add. The merge scratch
        // comes from (and returns to) the buffer pool: no parameter-sized
        // allocation on the steady-state epoch path.
        let mut filled = slots.into_iter().flatten();
        let (mut gradient_sum, mut device_stats) = match filled.next() {
            Some((sum, stats)) => (sum, stats),
            // Unreachable (count > 0 ⇒ ≥ 1 block), but the merge path must
            // not panic a worker: report an empty epoch instead.
            None => (self.take_zeroed(), Vec::new()),
        };
        device_stats.reserve(device_count.saturating_sub(device_stats.len()));
        for (block_sum, stats) in filled {
            crowd_linalg::kernels::add_assign(gradient_sum.as_mut_slice(), block_sum.as_slice());
            self.put_back(block_sum);
            device_stats.extend(stats);
        }
        DrainedEpoch {
            epoch: Some(EpochAggregate {
                gradient_sum,
                checkin_count: count,
                min_checkout_iteration: min_checkout,
                device_stats,
            }),
            waiters,
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn payload(device_id: u64, grad: Vec<f64>, checkout: u64) -> CheckinPayload {
        CheckinPayload {
            device_id,
            checkout_iteration: checkout,
            nonce: 0,
            gradient: Vector::from_vec(grad).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        }
    }

    fn waiter() -> (Waiter, mpsc::Receiver<CheckinOutcome>) {
        let (tx, rx) = mpsc::channel();
        (
            Waiter {
                checkout_iteration: 0,
                device_id: 0,
                nonce: 0,
                reply: tx,
                submitted: crowd_telemetry::Clock::logical().start(),
            },
            rx,
        )
    }

    #[test]
    fn drain_merges_devices_in_id_order() {
        let set = ShardSet::new(4, 3, 2);
        for device in [9u64, 2, 5] {
            let (w, _rx) = waiter();
            assert!(set
                .ingest(&payload(device, vec![device as f64, 0.0, 0.0], device), w)
                .is_ok());
        }
        let drained = set.drain();
        let epoch = drained.epoch.unwrap();
        assert_eq!(drained.count, 3);
        assert_eq!(epoch.checkin_count, 3);
        assert_eq!(epoch.min_checkout_iteration, 2);
        let ids: Vec<u64> = epoch.device_stats.iter().map(|d| d.device_id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(epoch.gradient_sum.as_slice(), &[16.0, 0.0, 0.0]);
        assert_eq!(drained.waiters.len(), 3);
        // A second drain finds nothing.
        assert!(set.drain().epoch.is_none());
    }

    #[test]
    fn repeat_checkins_accumulate_per_device() {
        let set = ShardSet::new(2, 2, 2);
        for step in 0..3u64 {
            let (w, _rx) = waiter();
            assert!(set.ingest(&payload(7, vec![1.0, 2.0], step), w).is_ok());
        }
        let epoch = set.drain().epoch.unwrap();
        assert_eq!(epoch.device_stats.len(), 1);
        let stats = &epoch.device_stats[0];
        assert_eq!(stats.checkins, 3);
        assert_eq!(stats.samples, 6);
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.label_counts, vec![3, 3]);
        assert_eq!(epoch.gradient_sum.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn mismatched_payload_is_handed_back_not_panicked() {
        let set = ShardSet::new(2, 3, 2);
        let (w, rx) = waiter();
        // Wrong gradient dimension: the waiter comes back so the caller can
        // fail that checkin, and nothing lands on any shard.
        assert!(set.ingest(&payload(0, vec![1.0; 5], 0), w).is_err());
        let (w, _rx2) = waiter();
        let mut bad_counts = payload(0, vec![1.0, 2.0, 3.0], 0);
        bad_counts.label_counts = vec![1];
        assert!(set.ingest(&bad_counts, w).is_err());
        assert!(set.drain().epoch.is_none());
        drop(rx);
    }

    /// Sparse and dense encodings of the same gradient must fold into bitwise
    /// identical epoch aggregates — the sparse path never densifies, it
    /// scatter-adds.
    #[test]
    fn sparse_ingest_matches_dense_ingest_bitwise() {
        use crowd_linalg::SparseVector;
        let dim = 16;
        let grads: Vec<Vec<f64>> = (0..6u64)
            .map(|step| {
                (0..dim)
                    .map(|i| {
                        if (i + step as usize).is_multiple_of(5) {
                            (i as f64 - 3.0) * 0.125
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let dense_set = ShardSet::new(3, dim, 2);
        let sparse_set = ShardSet::new(3, dim, 2);
        for (step, g) in grads.iter().enumerate() {
            let device = step as u64 % 2;
            let (w, _rx) = waiter();
            assert!(dense_set
                .ingest(&payload(device, g.clone(), step as u64), w)
                .is_ok());
            let (w, _rx) = waiter();
            let mut sparse_payload = payload(device, g.clone(), step as u64);
            sparse_payload.gradient =
                crowd_linalg::GradientUpdate::Sparse(SparseVector::from_dense(g));
            assert!(sparse_set.ingest(&sparse_payload, w).is_ok());
        }
        let dense_epoch = dense_set.drain().epoch.unwrap();
        let sparse_epoch = sparse_set.drain().epoch.unwrap();
        assert_eq!(dense_epoch.device_stats, sparse_epoch.device_stats);
        for (a, b) in dense_epoch
            .gradient_sum
            .iter()
            .zip(sparse_epoch.gradient_sum.iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The merge scratch and per-device accumulators cycle through the pool
    /// instead of being reallocated every epoch.
    #[test]
    fn drained_buffers_return_to_the_pool_and_get_reused() {
        let set = ShardSet::new(2, 4, 2);
        assert_eq!(set.pooled_buffers(), 0);
        for epoch in 0..3 {
            for device in 0..4u64 {
                let (w, _rx) = waiter();
                assert!(set
                    .ingest(&payload(device, vec![1.0, 0.0, 2.0, 0.0], epoch), w)
                    .is_ok());
            }
            let drained = set.drain();
            let agg = drained.epoch.unwrap();
            assert_eq!(agg.gradient_sum.as_slice(), &[4.0, 0.0, 8.0, 0.0]);
            // Device accumulators returned at drain; the merge buffer after
            // the (simulated) apply.
            assert_eq!(set.pooled_buffers(), 4);
            set.recycle_epoch(agg);
            assert_eq!(set.pooled_buffers(), 5);
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The combine-tree contract: a parallel merge (many workers, tiny
        /// threshold so it really runs on threads) is bitwise identical to
        /// the sequential merge at any shard count, device count, and
        /// dimension — including device counts straddling block boundaries.
        #[test]
        fn parallel_merge_matches_sequential_merge_bitwise(
            shard_count in 1usize..9,
            devices in 1u64..70,
            dim in 1usize..40,
            checkins_per_device in 1u64..4,
            seed in any::<u64>(),
        ) {
            let make_grad = |device: u64, step: u64| -> Vec<f64> {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (device.wrapping_mul(1000) + step),
                );
                (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
            };
            let fill = |set: &ShardSet| {
                for device in 0..devices {
                    for step in 0..checkins_per_device {
                        let (tx, _rx) = mpsc::channel();
                        let mut p = payload(device, make_grad(device, step), step);
                        p.label_counts = vec![1, 1];
                        assert!(set
                            .ingest(
                                &p,
                                Waiter {
                                    checkout_iteration: step,
                                    device_id: device,
                                    nonce: 0,
                                    reply: tx,
                                    submitted: crowd_telemetry::Clock::logical().start(),
                                },
                            )
                            .is_ok());
                    }
                }
            };
            let sequential = ShardSet::new(shard_count, dim, 2);
            fill(&sequential);
            let expected = sequential.drain().epoch.unwrap();

            let parallel = ShardSet::new(shard_count, dim, 2)
                .with_merge_workers(4)
                .with_parallel_min_elems(0);
            fill(&parallel);
            let merged = parallel.drain().epoch.unwrap();

            prop_assert_eq!(merged.checkin_count, expected.checkin_count);
            prop_assert_eq!(&merged.device_stats, &expected.device_stats);
            for (a, b) in merged.gradient_sum.iter().zip(expected.gradient_sum.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The determinism contract: concurrent ingest through many shards yields an
    /// aggregate bitwise identical to sequential ingest through a single lock.
    #[test]
    fn concurrent_sharded_ingest_matches_sequential_single_lock_bitwise() {
        let dim = 24;
        let devices = 12u64;
        let checkins_per_device = 5u64;
        let make_grad = move |device: u64, step: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(device * 1000 + step);
            (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
        };

        // Sequential reference: one stripe, one thread, device-major order.
        let reference = ShardSet::new(1, dim, 2);
        for device in 0..devices {
            for step in 0..checkins_per_device {
                let (w, _rx) = waiter();
                assert!(reference
                    .ingest(&payload(device, make_grad(device, step), step), w)
                    .is_ok());
            }
        }
        let expected = reference.drain().epoch.unwrap();

        // Concurrent sharded run: one thread per device, 5 stripes.
        let sharded = Arc::new(ShardSet::new(5, dim, 2));
        let mut handles = Vec::new();
        for device in 0..devices {
            let set = Arc::clone(&sharded);
            handles.push(std::thread::spawn(move || {
                for step in 0..checkins_per_device {
                    let (tx, _rx) = mpsc::channel();
                    assert!(set
                        .ingest(
                            &payload(device, make_grad(device, step), step),
                            Waiter {
                                checkout_iteration: step,
                                device_id: device,
                                nonce: 0,
                                reply: tx,
                                submitted: crowd_telemetry::Clock::logical().start(),
                            },
                        )
                        .is_ok());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let merged = sharded.drain().epoch.unwrap();

        assert_eq!(merged.checkin_count, expected.checkin_count);
        assert_eq!(merged.device_stats, expected.device_stats);
        // Bit-for-bit: compare the raw f64 slices with exact equality.
        assert_eq!(
            merged.gradient_sum.as_slice(),
            expected.gradient_sum.as_slice()
        );
    }
}
