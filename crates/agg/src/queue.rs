//! A bounded MPMC ingest queue with explicit backpressure.
//!
//! The queue never blocks producers: a push against a full queue fails
//! immediately so the caller can reply "server busy, retry later" instead of
//! letting handler threads pile up behind an unbounded buffer. Consumers block
//! with a timeout so they can flush partially filled epochs when traffic goes
//! idle, and a closed queue keeps draining its remaining items before reporting
//! closure — nothing that was admitted is ever dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Result of a [`BoundedQueue::pop_timeout`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue stayed empty for the whole timeout (and is still open).
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back to the caller.
    Full(T),
    /// The queue was closed; the item is handed back to the caller.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity queue shared between connection handlers (producers) and
/// aggregation workers (consumers).
pub struct BoundedQueue<T> {
    // audit:lock(agg.ingest-queue, 70)
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to enqueue without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let (next, result) = self
                .available
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if result.timed_out() && state.items.is_empty() && !state.closed {
                return Pop::TimedOut;
            }
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, consumers drain the remaining
    /// items and then observe [`Pop::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::TimedOut);
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        match q.try_push(12) {
            Err(PushError::Full(item)) => assert_eq!(item, 12),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer_q = Arc::clone(&q);
        let consumer = std::thread::spawn(move || consumer_q.pop_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(5));
        q.try_push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Pop::Item(7));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer_q = Arc::clone(&q);
        let consumer = std::thread::spawn(move || consumer_q.pop_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert_eq!(consumer.join().unwrap(), Pop::Closed);
    }
}
