//! Duplicate-checkin detection keyed on `(device_id, nonce)`.
//!
//! The transport makes no exactly-once promise: a client whose connection dies
//! after the request was sent cannot know whether the server applied its
//! checkin, so it retries — and a flaky network can deliver the same frame
//! twice on its own. Devices therefore tag every checkin with a per-device
//! nonce, and the runtime remembers the outcome of each applied nonce: a
//! duplicate is answered with the *original* acknowledgement instead of being
//! applied (and ε-charged) a second time. That replay is what makes retried
//! checkins idempotent, which in turn is what lets a fault-injected run land
//! bitwise on the fault-free reference.
//!
//! The table distinguishes in-flight nonces (admitted but their epoch not yet
//! applied) from completed ones. A duplicate of an in-flight checkin is
//! answered "busy, retry shortly" — by the time the client retries, the
//! original has resolved and the replay path serves it. Completed entries are
//! evicted FIFO once the table exceeds its capacity; retries arrive within
//! milliseconds, so a multi-thousand-entry window is orders of magnitude more
//! history than any retry needs.
//!
//! Scope: the table is in-memory, so the exactly-once guarantee spans one
//! server *lifetime*. Crash recovery replays the WAL-logged (acked) state
//! exactly once, but a retry that straddles a crash — sent before the crash,
//! retried against the restarted server — meets an empty table and can be
//! applied a second time. The chaos driver therefore crashes servers only
//! between acknowledged checkins; making retries crash-proof would require
//! persisting completed nonces alongside the epochs they acked.

use crowd_core::server::CheckinOutcome;
use std::collections::{BTreeMap, VecDeque};

/// What the runtime should do with a submitted nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Never seen: admit the checkin and mark the nonce in flight.
    Fresh,
    /// The same nonce is currently in flight; the caller should answer with
    /// retryable backpressure rather than queue a duplicate.
    InFlight,
    /// Already applied: replay the recorded outcome without re-applying.
    Replay(CheckinOutcome),
}

enum DedupState {
    InFlight,
    Done(CheckinOutcome),
}

/// Bounded memory of recent checkin outcomes, keyed on `(device_id, nonce)`.
pub(crate) struct DedupTable {
    // A BTreeMap so any future iteration over the ledger (eviction sweeps,
    // state export) is deterministic; lookups stay logarithmic.
    entries: BTreeMap<(u64, u64), DedupState>,
    /// Completed keys in completion order — the FIFO eviction queue. In-flight
    /// keys are never evicted (they always resolve or are abandoned).
    completed: VecDeque<(u64, u64)>,
    capacity: usize,
}

impl DedupTable {
    /// Creates a table remembering at most `capacity` completed checkins.
    pub(crate) fn new(capacity: usize) -> Self {
        DedupTable {
            entries: BTreeMap::new(),
            completed: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Classifies `key` and, when fresh, marks it in flight.
    pub(crate) fn admit(&mut self, key: (u64, u64)) -> Admission {
        match self.entries.get(&key) {
            Some(DedupState::Done(outcome)) => Admission::Replay(*outcome),
            Some(DedupState::InFlight) => Admission::InFlight,
            None => {
                self.entries.insert(key, DedupState::InFlight);
                Admission::Fresh
            }
        }
    }

    /// Drops an in-flight marker whose checkin was never admitted (queue full,
    /// shutdown, ingest failure), so a retry can be admitted fresh.
    pub(crate) fn abandon(&mut self, key: (u64, u64)) {
        if matches!(self.entries.get(&key), Some(DedupState::InFlight)) {
            self.entries.remove(&key);
        }
    }

    /// Records the outcome of an applied checkin, evicting the oldest
    /// completed entries beyond the capacity.
    pub(crate) fn complete(&mut self, key: (u64, u64), outcome: CheckinOutcome) {
        self.entries.insert(key, DedupState::Done(outcome));
        self.completed.push_back(key);
        while self.completed.len() > self.capacity {
            if let Some(old) = self.completed.pop_front() {
                // Only remove if still completed: the key cannot be re-used
                // while Done (admit replays it), so this is always safe, but
                // stay defensive about the state anyway.
                if matches!(self.entries.get(&old), Some(DedupState::Done(_))) {
                    self.entries.remove(&old);
                }
            }
        }
    }

    /// Number of keys currently remembered (in flight + completed).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(iteration: u64) -> CheckinOutcome {
        CheckinOutcome {
            accepted: true,
            iteration,
            stopped: false,
            staleness: 0,
            deduped: false,
        }
    }

    #[test]
    fn fresh_inflight_replay_lifecycle() {
        let mut table = DedupTable::new(8);
        let key = (3, 1);
        assert_eq!(table.admit(key), Admission::Fresh);
        // A duplicate while the original is in flight is told to back off.
        assert_eq!(table.admit(key), Admission::InFlight);
        table.complete(key, outcome(5));
        // After completion, duplicates replay the recorded ack.
        assert_eq!(table.admit(key), Admission::Replay(outcome(5)));
        assert_eq!(table.admit(key), Admission::Replay(outcome(5)));
    }

    #[test]
    fn abandon_allows_fresh_retry() {
        let mut table = DedupTable::new(8);
        let key = (1, 7);
        assert_eq!(table.admit(key), Admission::Fresh);
        table.abandon(key);
        assert_eq!(table.admit(key), Admission::Fresh);
        // Abandon is a no-op on completed entries.
        table.complete(key, outcome(2));
        table.abandon(key);
        assert_eq!(table.admit(key), Admission::Replay(outcome(2)));
    }

    #[test]
    fn completed_entries_evict_fifo_but_inflight_survive() {
        let mut table = DedupTable::new(2);
        let inflight = (9, 100);
        assert_eq!(table.admit(inflight), Admission::Fresh);
        for nonce in 1..=4u64 {
            let key = (0, nonce);
            assert_eq!(table.admit(key), Admission::Fresh);
            table.complete(key, outcome(nonce));
        }
        // Only the 2 most recent completed entries remain; older ones are
        // forgotten and would be admitted fresh again.
        assert_eq!(table.admit((0, 1)), Admission::Fresh);
        table.abandon((0, 1));
        assert_eq!(table.admit((0, 4)), Admission::Replay(outcome(4)));
        // The in-flight key outlived every eviction.
        assert_eq!(table.admit(inflight), Admission::InFlight);
        assert!(table.len() <= 4);
    }
}
