//! The aggregation runtime: lock-free-read checkouts, sharded checkin ingest,
//! and a worker pool that applies merged epochs to the core server.
//!
//! Request flow:
//!
//! ```text
//! checkout  ──►  RwLock<Arc<ParamSnapshot>>      (read: clone an Arc)
//! checkin   ──►  BoundedQueue ──► worker ──► shard accumulator
//!                                    │ (epoch full or traffic idle)
//!                                    ▼
//!                        Mutex<Server> ── apply_aggregate ── swap snapshot
//! ```
//!
//! The only global exclusion is the epoch application itself (one projected SGD
//! step per epoch); everything a checkin does per-request — validation, queue
//! admission, gradient summing — touches at most one shard lock. A full queue
//! rejects with [`AggError::Busy`] carrying a retry hint instead of letting
//! connection handlers pile up.

use crate::queue::{BoundedQueue, Pop, PushError};
use crate::shard::{ShardSet, Waiter};
use crate::{AggError, Result};
use crowd_core::config::AggSettings;
use crowd_core::device::CheckinPayload;
use crowd_core::server::{CheckinOutcome, CheckoutTicket, Server};
use crowd_learning::model::Model;
use crowd_linalg::Vector;
use crowd_sim::trace::{SharedTrace, TraceCollector};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// An immutable view of the global parameters at some server iteration.
///
/// Checkouts clone an `Arc` to one of these under a briefly held read lock (the
/// writer only swaps a pointer), so the read path never waits on gradient
/// application and never copies the parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSnapshot {
    /// Server iteration at which the snapshot was taken.
    pub iteration: u64,
    /// The global parameters `w`.
    pub params: Vector,
    /// Whether the stopping criterion was met.
    pub stopped: bool,
}

struct Job {
    payload: CheckinPayload,
    reply: mpsc::Sender<CheckinOutcome>,
}

struct Inner<M: Model> {
    core: Mutex<Server<M>>,
    shards: ShardSet,
    snapshot: RwLock<Arc<ParamSnapshot>>,
    queue: BoundedQueue<Job>,
    /// Checkins accumulated on a shard but not yet merged into an epoch.
    /// Signed: a merge may drain a payload just before the ingesting worker's
    /// increment lands, dipping the counter below zero for an instant.
    pending: AtomicI64,
    settings: AggSettings,
    param_dim: usize,
    num_classes: usize,
    stats: SharedTrace,
}

/// A ticket for a submitted checkin: blocks until the checkin's epoch has been
/// applied and the outcome is known.
pub struct CompletionHandle {
    rx: mpsc::Receiver<CheckinOutcome>,
}

impl CompletionHandle {
    /// Waits for the checkin's epoch to be applied.
    pub fn wait(self) -> Result<CheckinOutcome> {
        self.rx.recv().map_err(|_| AggError::ShuttingDown)
    }

    /// Waits up to `timeout`; `Err(ShuttingDown)` if the runtime died,
    /// `Err(Timeout)` if the epoch was not applied in time.
    pub fn wait_timeout(self, timeout: Duration) -> Result<CheckinOutcome> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Ok(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(AggError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(AggError::ShuttingDown),
        }
    }
}

/// The sharded, batched aggregation runtime wrapping a [`Server`].
pub struct AggRuntime<M: Model + Send + 'static> {
    inner: Arc<Inner<M>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<M: Model + Send + 'static> AggRuntime<M> {
    /// Wraps `server` in a runtime configured by `server.config().agg`.
    pub fn new(server: Server<M>) -> Result<Self> {
        let settings = server.config().agg;
        settings.validate().map_err(AggError::Core)?;
        let param_dim = server.params().len();
        let num_classes = server.model().num_classes();
        let ticket = server.checkout();
        let inner = Arc::new(Inner {
            shards: ShardSet::new(settings.shard_count, param_dim, num_classes),
            snapshot: RwLock::new(Arc::new(ParamSnapshot {
                iteration: ticket.iteration,
                params: ticket.params,
                stopped: ticket.stopped,
            })),
            queue: BoundedQueue::new(settings.queue_bound),
            pending: AtomicI64::new(0),
            core: Mutex::new(server),
            settings,
            param_dim,
            num_classes,
            stats: SharedTrace::new(),
        });
        let workers = (0..settings.worker_threads)
            .map(|_| {
                let worker_inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(worker_inner))
            })
            .collect();
        Ok(AggRuntime {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The runtime's settings.
    pub fn settings(&self) -> &AggSettings {
        &self.inner.settings
    }

    /// The read path: the current parameter snapshot, shared not copied.
    pub fn snapshot(&self) -> Arc<ParamSnapshot> {
        Arc::clone(&self.inner.snapshot.read())
    }

    /// The read path as a core [`CheckoutTicket`] (copies the parameters).
    pub fn checkout(&self) -> CheckoutTicket {
        let snap = self.snapshot();
        CheckoutTicket {
            iteration: snap.iteration,
            params: snap.params.clone(),
            stopped: snap.stopped,
        }
    }

    /// Admits one checkin into the ingest queue.
    ///
    /// Fails fast with [`AggError::Invalid`] on malformed payloads and
    /// [`AggError::Busy`] when the queue is full (backpressure: the caller
    /// should retry after the indicated delay rather than block).
    ///
    /// The merged aggregate is bitwise independent of shard count and device
    /// interleaving as long as each *individual device's* checkins accumulate
    /// in a fixed order — guaranteed when devices await their acks before
    /// submitting again (the protocol's behavior), or with one worker thread.
    pub fn submit(&self, payload: CheckinPayload) -> Result<CompletionHandle> {
        self.validate(&payload)?;
        let (tx, rx) = mpsc::channel();
        let job = Job { payload, reply: tx };
        match self.inner.queue.try_push(job) {
            Ok(()) => Ok(CompletionHandle { rx }),
            Err(PushError::Full(_)) => {
                self.inner.stats.count("busy_rejections");
                Err(AggError::Busy {
                    retry_after_ms: self.inner.settings.retry_after_ms,
                })
            }
            Err(PushError::Closed(_)) => Err(AggError::ShuttingDown),
        }
    }

    /// Submits a checkin and blocks until its epoch is applied.
    pub fn checkin(&self, payload: CheckinPayload) -> Result<CheckinOutcome> {
        self.submit(payload)?.wait()
    }

    fn validate(&self, payload: &CheckinPayload) -> Result<()> {
        if payload.gradient.len() != self.inner.param_dim {
            return Err(AggError::Invalid(format!(
                "checkin gradient has dimension {}, expected {}",
                payload.gradient.len(),
                self.inner.param_dim
            )));
        }
        if payload.label_counts.len() != self.inner.num_classes {
            return Err(AggError::Invalid(format!(
                "checkin reports {} label counts, expected {}",
                payload.label_counts.len(),
                self.inner.num_classes
            )));
        }
        if payload.num_samples == 0 {
            return Err(AggError::Invalid(
                "checkin must cover at least one sample".into(),
            ));
        }
        Ok(())
    }

    /// Server iteration (number of applied epochs).
    pub fn iteration(&self) -> u64 {
        self.inner.core.lock().iteration()
    }

    /// A copy of the current parameters.
    pub fn params(&self) -> Vector {
        self.inner.core.lock().params().clone()
    }

    /// Whether the stopping criterion has been met.
    pub fn stopped(&self) -> bool {
        self.inner.core.lock().stopped()
    }

    /// Total samples reported across devices.
    pub fn total_samples(&self) -> u64 {
        self.inner.core.lock().total_samples()
    }

    /// The privately estimated error rate, if any samples were reported.
    pub fn error_estimate(&self) -> Option<f64> {
        self.inner.core.lock().error_estimate()
    }

    /// Number of devices that have checked in at least once.
    pub fn active_devices(&self) -> usize {
        self.inner.core.lock().active_devices()
    }

    /// A snapshot of the runtime counters (`epoch_merges`, `checkins_applied`,
    /// `busy_rejections`, …).
    pub fn stats(&self) -> TraceCollector {
        self.inner.stats.snapshot()
    }

    /// Stops accepting checkins, applies everything already admitted, and joins
    /// the worker pool. Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let workers: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl<M: Model + Send + 'static> Drop for AggRuntime<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<M: Model>(inner: Arc<Inner<M>>) {
    let flush_on_idle = inner.settings.flush_idle_ms > 0;
    let idle = if flush_on_idle {
        Duration::from_millis(inner.settings.flush_idle_ms as u64)
    } else {
        // Without idle flushing, the timeout only paces shutdown polling.
        Duration::from_millis(50)
    };
    // Clamp instead of casting: `u64::MAX as i64` would wrap to -1 and make
    // "epoch never closes by size" close on every single ingest.
    let epoch_threshold = inner.settings.epoch_size.min(i64::MAX as u64) as i64;
    loop {
        match inner.queue.pop_timeout(idle) {
            Pop::Item(job) => {
                // Per-checkin epochs must stay per-checkin even when several
                // workers race (a shard drain would coalesce concurrently
                // ingested payloads into one epoch and under-count server
                // iterations), so epoch_size = 1 bypasses the shards and
                // applies each payload as its own singleton epoch.
                if inner.settings.epoch_size == 1 {
                    apply_singleton(&inner, job);
                    continue;
                }
                // Ingest first, count after. A concurrent merge may drain the
                // payload before its increment lands, sending `pending`
                // transiently negative (it is signed for exactly this reason);
                // the increment then restores it. Counting first instead would
                // let a merge fire between this worker's increment and its
                // ingest, stranding the not-yet-ingested checkin below the
                // epoch threshold with nothing left to trigger a flush.
                inner.shards.ingest(
                    &job.payload,
                    Waiter {
                        checkout_iteration: job.payload.checkout_iteration,
                        reply: job.reply,
                    },
                );
                let counted = inner.pending.fetch_add(1, Ordering::SeqCst) + 1;
                if counted >= epoch_threshold {
                    merge(&inner);
                }
            }
            Pop::TimedOut => {
                if flush_on_idle && inner.pending.load(Ordering::SeqCst) > 0 {
                    merge(&inner);
                }
            }
            Pop::Closed => {
                // Final flush: apply whatever was admitted before shutdown.
                if inner.pending.load(Ordering::SeqCst) > 0 {
                    merge(&inner);
                }
                return;
            }
        }
    }
}

/// Applies one checkin as its own epoch (the `epoch_size = 1` fast path): the
/// classic Server Routine 2 update, bit for bit, one iteration per checkin.
fn apply_singleton<M: Model>(inner: &Inner<M>, job: Job) {
    let mut core = inner.core.lock();
    match core.checkin(&job.payload) {
        Ok(outcome) => {
            let snapshot = Arc::new(ParamSnapshot {
                iteration: core.iteration(),
                params: core.params().clone(),
                stopped: outcome.stopped,
            });
            *inner.snapshot.write() = snapshot;
            drop(core);
            inner.stats.count("epoch_merges");
            inner.stats.count("checkins_applied");
            let _ = job.reply.send(outcome);
        }
        Err(_) => {
            // Unreachable for payloads that passed submit-time validation.
            let outcome = CheckinOutcome {
                accepted: false,
                iteration: core.iteration(),
                stopped: core.stopped(),
                staleness: 0,
            };
            drop(core);
            inner.stats.count("apply_errors");
            let _ = job.reply.send(outcome);
        }
    }
}

/// Applies one epoch: drain the shards (fixed merge order), take one projected
/// SGD step on the core server, publish the new snapshot, wake the waiters.
fn merge<M: Model>(inner: &Inner<M>) {
    let mut core = inner.core.lock();
    let drained = inner.shards.drain();
    let Some(epoch) = drained.epoch else {
        return;
    };
    inner
        .pending
        .fetch_sub(drained.count as i64, Ordering::SeqCst);
    let (outcome, waiters) = match core.apply_aggregate(&epoch) {
        Ok(outcome) => {
            let snapshot = Arc::new(ParamSnapshot {
                iteration: core.iteration(),
                params: core.params().clone(),
                stopped: outcome.stopped,
            });
            *inner.snapshot.write() = snapshot;
            drop(core);
            inner.stats.count("epoch_merges");
            inner.stats.add("checkins_applied", drained.count);
            if drained.count > 1 {
                inner.stats.count("batched_epochs");
            }
            (outcome, drained.waiters)
        }
        Err(_) => {
            // Unreachable for payloads that passed submit-time validation; fail
            // the epoch's checkins without taking a step.
            let outcome = CheckinOutcome {
                accepted: false,
                iteration: core.iteration(),
                stopped: core.stopped(),
                staleness: 0,
            };
            drop(core);
            inner.stats.count("apply_errors");
            (outcome, drained.waiters)
        }
    };
    // Staleness is per-checkin: measured against the iteration the epoch was
    // applied at (the pre-update iteration, as in the classic checkin path).
    let pre_iteration = outcome.iteration - u64::from(outcome.accepted);
    for waiter in waiters {
        let _ = waiter.reply.send(CheckinOutcome {
            accepted: outcome.accepted,
            iteration: outcome.iteration,
            stopped: outcome.stopped,
            staleness: pre_iteration.saturating_sub(waiter.checkout_iteration),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;

    fn payload(device_id: u64, grad: Vec<f64>, checkout: u64) -> CheckinPayload {
        CheckinPayload {
            device_id,
            checkout_iteration: checkout,
            gradient: Vector::from_vec(grad),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    fn runtime(config: ServerConfig) -> AggRuntime<MulticlassLogistic> {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        AggRuntime::new(Server::new(model, config).unwrap()).unwrap()
    }

    #[test]
    fn checkout_reads_snapshot_without_blocking() {
        let rt = runtime(ServerConfig::new());
        let snap = rt.snapshot();
        assert_eq!(snap.iteration, 0);
        assert_eq!(snap.params.len(), 6);
        assert!(!snap.stopped);
        let ticket = rt.checkout();
        assert_eq!(ticket.iteration, 0);
        rt.shutdown();
    }

    #[test]
    fn checkin_applies_update_and_advances_snapshot() {
        let rt = runtime(ServerConfig::new().with_rate_constant(1.0));
        let outcome = rt
            .checkin(payload(3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0))
            .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.iteration, 1);
        assert_eq!(outcome.staleness, 0);
        // η(1) = 1, so w moved by -1 on the first coordinate; the snapshot the
        // next checkout sees reflects the update.
        let snap = rt.snapshot();
        assert_eq!(snap.iteration, 1);
        assert!((snap.params[0] + 1.0).abs() < 1e-12);
        assert_eq!(rt.iteration(), 1);
        assert_eq!(rt.total_samples(), 2);
        assert_eq!(rt.active_devices(), 1);
        assert_eq!(rt.stats().get("checkins_applied"), 1);
        rt.shutdown();
    }

    #[test]
    fn invalid_payloads_fail_fast() {
        let rt = runtime(ServerConfig::new());
        assert!(matches!(
            rt.checkin(payload(0, vec![1.0; 5], 0)),
            Err(AggError::Invalid(_))
        ));
        let mut zero = payload(0, vec![0.0; 6], 0);
        zero.num_samples = 0;
        assert!(matches!(rt.checkin(zero), Err(AggError::Invalid(_))));
        let mut counts = payload(0, vec![0.0; 6], 0);
        counts.label_counts = vec![0, 0];
        assert!(matches!(rt.checkin(counts), Err(AggError::Invalid(_))));
        assert_eq!(rt.iteration(), 0);
        rt.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One-deep queue and an epoch size nothing reaches without the idle
        // flush: submissions beyond the first are rejected with a retry hint.
        let config = ServerConfig::new().with_agg(crowd_core::config::AggSettings {
            shard_count: 2,
            queue_bound: 1,
            epoch_size: u64::MAX,
            worker_threads: 1,
            retry_after_ms: 7,
            flush_idle_ms: 0,
        });
        let rt = runtime(config);
        let mut handles = Vec::new();
        let mut busy = 0;
        for i in 0..50u64 {
            match rt.submit(payload(i, vec![0.1; 6], 0)) {
                Ok(h) => handles.push(h),
                Err(AggError::Busy { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, 7);
                    busy += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(busy > 0, "a 1-deep queue must reject under a burst of 50");
        assert_eq!(rt.stats().get("busy_rejections"), busy);
        // Shutdown flushes the admitted checkins; every handle resolves.
        rt.shutdown();
        for h in handles {
            let outcome = h.wait().unwrap();
            assert!(outcome.accepted);
        }
    }

    #[test]
    fn batched_epochs_apply_mean_gradient() {
        let config =
            ServerConfig::new()
                .with_rate_constant(1.0)
                .with_agg(crowd_core::config::AggSettings {
                    shard_count: 4,
                    queue_bound: 64,
                    epoch_size: 4,
                    worker_threads: 1,
                    retry_after_ms: 1,
                    flush_idle_ms: 0,
                });
        let rt = runtime(config);
        let handles: Vec<CompletionHandle> = (0..4u64)
            .map(|d| {
                rt.submit(payload(d, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0))
                    .unwrap()
            })
            .collect();
        for h in handles {
            let outcome = h.wait_timeout(Duration::from_secs(10)).unwrap();
            assert!(outcome.accepted);
            assert_eq!(outcome.iteration, 1, "4 checkins fold into ONE epoch");
        }
        // Mean gradient (1, 0, …) with η(1) = 1 moves w by exactly -1.
        assert!((rt.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(rt.iteration(), 1);
        assert_eq!(rt.total_samples(), 8);
        assert_eq!(rt.stats().get("batched_epochs"), 1);
        rt.shutdown();
    }

    #[test]
    fn idle_flush_applies_partial_epochs() {
        let config = ServerConfig::new().with_agg(crowd_core::config::AggSettings {
            shard_count: 2,
            queue_bound: 16,
            epoch_size: 1000,
            worker_threads: 1,
            retry_after_ms: 1,
            flush_idle_ms: 1,
        });
        let rt = runtime(config);
        // Far fewer checkins than the epoch size: the idle flush must still
        // apply them promptly rather than stalling the devices forever.
        let outcome = rt
            .submit(payload(0, vec![0.5; 6], 0))
            .unwrap()
            .wait_timeout(Duration::from_secs(10))
            .unwrap();
        assert!(outcome.accepted);
        assert_eq!(rt.iteration(), 1);
        rt.shutdown();
    }

    #[test]
    fn stopped_server_rejects_but_counts() {
        let rt = runtime(ServerConfig::new().with_max_iterations(1));
        assert!(rt.checkin(payload(0, vec![0.1; 6], 0)).unwrap().accepted);
        let second = rt.checkin(payload(1, vec![0.1; 6], 1)).unwrap();
        assert!(!second.accepted);
        assert!(second.stopped);
        assert!(rt.snapshot().stopped);
        assert_eq!(rt.iteration(), 1);
        // The rejected checkin's statistics still count (Server Routine 2).
        assert_eq!(rt.total_samples(), 4);
        rt.shutdown();
    }

    #[test]
    fn concurrent_checkins_from_many_devices() {
        let config = ServerConfig::new().with_shard_count(8);
        let rt = Arc::new(runtime(config));
        let mut threads = Vec::new();
        for device in 0..8u64 {
            let rt = Arc::clone(&rt);
            threads.push(std::thread::spawn(move || {
                for step in 0..10u64 {
                    let outcome = rt.checkin(payload(device, vec![0.01; 6], step)).unwrap();
                    assert!(outcome.accepted);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rt.total_samples(), 160);
        assert_eq!(rt.active_devices(), 8);
        assert_eq!(rt.stats().get("checkins_applied"), 80);
        rt.shutdown();
    }
}
