//! The aggregation runtime: lock-free-read checkouts, sharded checkin ingest,
//! and a worker pool that applies merged epochs to the core server.
//!
//! Request flow:
//!
//! ```text
//! checkout  ──►  RwLock<Arc<ParamSnapshot>>      (read: clone an Arc)
//! checkin   ──►  BoundedQueue ──► worker ──► shard accumulator
//!                                    │ (epoch full or traffic idle)
//!                                    ▼
//!                        Mutex<Server> ── apply_aggregate ── swap snapshot
//! ```
//!
//! The only global exclusion is the epoch application itself (one projected SGD
//! step per epoch); everything a checkin does per-request — validation, queue
//! admission, gradient summing — touches at most one shard lock. A full queue
//! rejects with [`AggError::Busy`] carrying a retry hint instead of letting
//! connection handlers pile up.

use crate::dedup::{Admission, DedupTable};
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::shard::{ShardSet, Waiter};
use crate::{AggError, Result};
use crowd_core::config::AggSettings;
use crowd_core::device::CheckinPayload;
use crowd_core::server::{
    CheckinOutcome, CheckoutTicket, EpochAggregate, PendingSubmission, RoundAdmission, RoundInfo,
    Server,
};
use crowd_learning::model::Model;
use crowd_linalg::Vector;
use crowd_store::Store;
use crowd_telemetry::{CounterId, GaugeId, HistogramId, MetricsSnapshot, Registry, Stage, Tick};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// An immutable view of the global parameters at some server iteration.
///
/// Checkouts clone an `Arc` to one of these under a briefly held read lock (the
/// writer only swaps a pointer), so the read path never waits on gradient
/// application and never copies the parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSnapshot {
    /// Server iteration at which the snapshot was taken.
    pub iteration: u64,
    /// The global parameters `w`.
    pub params: Vector,
    /// Whether the stopping criterion was met.
    pub stopped: bool,
}

/// Completed checkins remembered for duplicate detection. Retries arrive
/// within the client's backoff window (milliseconds), so thousands of entries
/// are far more history than any retry needs.
const DEDUP_CAPACITY: usize = 8192;

struct Job {
    payload: CheckinPayload,
    reply: mpsc::Sender<CheckinOutcome>,
    /// When the checkin was admitted, for the end-to-end latency histogram
    /// (`checkin_latency_us`: queue wait + shard ingest + epoch apply + ack).
    submitted: Tick,
}

struct Inner<M: Model> {
    // audit:lock(agg.core, 10)
    core: Mutex<Server<M>>,
    shards: ShardSet,
    // audit:lock(agg.snapshot, 50)
    snapshot: RwLock<Arc<ParamSnapshot>>,
    queue: BoundedQueue<Job>,
    /// Checkins accumulated on a shard but not yet merged into an epoch.
    /// Signed: a merge may drain a payload just before the ingesting worker's
    /// increment lands, dipping the counter below zero for an instant.
    pending: AtomicI64,
    settings: AggSettings,
    param_dim: usize,
    num_classes: usize,
    /// The crowd-scope registry every counter, gauge, histogram, and span on
    /// the checkin path lands in. Shared so servers can scrape it live and
    /// deterministic harnesses can inject a logical-clock registry.
    metrics: Arc<Registry>,
    /// The durability hook: when present, every epoch is WAL-appended (with
    /// its ε charges) *before* it is applied and its checkins acked, so the
    /// append group-commits with the epoch batching. Locked strictly after
    /// `core` (never the other way) to keep the lock order acyclic.
    // audit:lock(agg.store, 30)
    store: Option<Mutex<Store>>,
    /// Devices that have spent their entire privacy budget. Read lock-free-ish
    /// on the submit path; updated under the core lock whenever an applied
    /// epoch pushes a device over its ceiling.
    // audit:lock(agg.exhausted, 40)
    exhausted: RwLock<HashSet<u64>>,
    /// The open round's published parameters, mirrored out of the core server
    /// so checkouts read them without touching the core lock. Written only
    /// under the core lock (at construction and whenever a round advances).
    // audit:lock(agg.rounds, 55)
    rounds: RwLock<Option<RoundInfo>>,
    /// Recent checkin outcomes keyed on `(device_id, nonce)`: a retried or
    /// network-duplicated checkin is answered with the original ack instead of
    /// being applied (and ε-charged) twice.
    // audit:lock(agg.dedup, 60)
    dedup: Mutex<DedupTable>,
    /// Set by [`AggRuntime::kill`]: skip the final flush and the shutdown
    /// checkpoint, leaving the disk exactly as a SIGKILL would.
    crashed: AtomicBool,
}

/// Why [`AggRuntime::submit_or_return`] refused a checkin.
#[derive(Debug)]
pub enum SubmitRejection {
    /// Retryable backpressure — the ingest queue is full, or a duplicate of
    /// this nonce is still in flight. The payload is returned so the caller
    /// can park it (e.g. a reactor throttling the connection's reads) and
    /// re-attempt admission later.
    Busy {
        /// The checkin, unchanged; resubmit it as-is.
        payload: CheckinPayload,
        /// Pacing hint, mirroring [`AggError::Busy`].
        retry_after_ms: u32,
    },
    /// Hard refusal (malformed, budget exhausted, shutting down); the
    /// connection should be answered with the mapped error reply.
    Refused(AggError),
}

/// How [`AggRuntime::submit_round`] answered a masked round submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundSubmitOutcome {
    /// The contribution stands (freshly accepted, or a deduplicated retry of
    /// one that already did — `outcome.deduped` distinguishes them). It is
    /// applied to the model when the round finalizes.
    Acked(CheckinOutcome),
    /// The named round has closed; the device must refetch parameters (which
    /// carry the current `RoundParams`) and resync.
    Outdated {
        /// The server's current round id.
        current_round: u64,
    },
}

/// A ticket for a submitted checkin: blocks until the checkin's epoch has been
/// applied and the outcome is known.
pub struct CompletionHandle {
    rx: mpsc::Receiver<CheckinOutcome>,
}

impl CompletionHandle {
    /// Waits for the checkin's epoch to be applied.
    pub fn wait(self) -> Result<CheckinOutcome> {
        self.rx.recv().map_err(|_| AggError::ShuttingDown)
    }

    /// Waits up to `timeout`; `Err(ShuttingDown)` if the runtime died,
    /// `Err(Timeout)` if the epoch was not applied in time.
    pub fn wait_timeout(self, timeout: Duration) -> Result<CheckinOutcome> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Ok(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(AggError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(AggError::ShuttingDown),
        }
    }
}

/// The sharded, batched aggregation runtime wrapping a [`Server`].
pub struct AggRuntime<M: Model + Send + 'static> {
    inner: Arc<Inner<M>>,
    // audit:lock(agg.workers, 5)
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<M: Model + Send + 'static> AggRuntime<M> {
    /// Wraps `server` in a volatile runtime configured by `server.config().agg`.
    pub fn new(server: Server<M>) -> Result<Self> {
        Self::with_store(server, None)
    }

    /// Wraps `server` in a runtime backed by `store` (opened — and already
    /// recovered from — by the caller, typically via `crowd_store::Store::open`
    /// with this same server). Every applied epoch is WAL-logged before its
    /// checkins are acknowledged; periodic snapshots and the clean-shutdown
    /// checkpoint come from the store's configured cadence.
    pub fn with_store(server: Server<M>, store: Option<Store>) -> Result<Self> {
        Self::with_instrumentation(server, store, Arc::new(Registry::new()))
    }

    /// Like [`AggRuntime::with_store`], but every counter, gauge, histogram,
    /// and span lands in the caller's `metrics` registry. This is how a
    /// serving layer shares one scrapeable registry with the runtime, and how
    /// deterministic suites inject a logical-clock registry so two identical
    /// seeded runs render byte-identical metric dumps.
    pub fn with_instrumentation(
        server: Server<M>,
        store: Option<Store>,
        metrics: Arc<Registry>,
    ) -> Result<Self> {
        let settings = server.config().agg;
        settings.validate().map_err(AggError::Core)?;
        let param_dim = server.params().len();
        let num_classes = server.model().num_classes();
        let ticket = server.checkout();
        // Seed the refusal set from the (possibly recovered) ledger, so a
        // device that exhausted its budget before a crash stays refused after
        // the restart.
        let exhausted: HashSet<u64> = server
            .budget_ledger()
            .iter()
            .map(|&(id, _)| id)
            .filter(|&id| server.budget_exhausted(id))
            .collect();
        // The store shares the runtime's registry so WAL append bytes, fsync
        // latency, and snapshot durations land in the same scrape.
        let store = store.map(|mut s| {
            s.set_metrics(Arc::clone(&metrics));
            s
        });
        let round_info = server.round_info();
        let inner = Arc::new(Inner {
            shards: ShardSet::new(settings.shard_count, param_dim, num_classes)
                .with_merge_workers(settings.worker_threads),
            snapshot: RwLock::new(Arc::new(ParamSnapshot {
                iteration: ticket.iteration,
                params: ticket.params,
                stopped: ticket.stopped,
            })),
            queue: BoundedQueue::new(settings.queue_bound),
            pending: AtomicI64::new(0),
            core: Mutex::new(server),
            settings,
            param_dim,
            num_classes,
            metrics,
            store: store.map(Mutex::new),
            exhausted: RwLock::new(exhausted),
            rounds: RwLock::new(round_info),
            dedup: Mutex::new(DedupTable::new(DEDUP_CAPACITY)),
            crashed: AtomicBool::new(false),
        });
        // A recovered round may already be past its deadline (the crash could
        // land between the expiring apply and its finalization); settle it
        // before serving.
        finalize_due_rounds(&inner);
        let workers = (0..settings.worker_threads)
            .map(|_| {
                let worker_inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(worker_inner))
            })
            .collect();
        Ok(AggRuntime {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The runtime's settings.
    pub fn settings(&self) -> &AggSettings {
        &self.inner.settings
    }

    /// The read path: the current parameter snapshot, shared not copied.
    pub fn snapshot(&self) -> Arc<ParamSnapshot> {
        Arc::clone(&self.inner.snapshot.read())
    }

    /// The read path as a core [`CheckoutTicket`] (copies the parameters).
    pub fn checkout(&self) -> CheckoutTicket {
        let snap = self.snapshot();
        CheckoutTicket {
            iteration: snap.iteration,
            params: snap.params.clone(),
            stopped: snap.stopped,
        }
    }

    /// Admits one checkin into the ingest queue.
    ///
    /// Fails fast with [`AggError::Invalid`] on malformed payloads and
    /// [`AggError::Busy`] when the queue is full (backpressure: the caller
    /// should retry after the indicated delay rather than block).
    ///
    /// The merged aggregate is bitwise independent of shard count and device
    /// interleaving as long as each *individual device's* checkins accumulate
    /// in a fixed order — guaranteed when devices await their acks before
    /// submitting again (the protocol's behavior), or with one worker thread.
    pub fn submit(&self, payload: CheckinPayload) -> Result<CompletionHandle> {
        match self.submit_or_return(payload) {
            Ok(handle) => Ok(handle),
            Err(SubmitRejection::Busy { retry_after_ms, .. }) => {
                Err(AggError::Busy { retry_after_ms })
            }
            Err(SubmitRejection::Refused(err)) => Err(err),
        }
    }

    /// Like [`AggRuntime::submit`], but on retryable backpressure the payload
    /// is handed back instead of dropped, so an event-driven caller can park
    /// it and re-attempt admission later without re-decoding the request. The
    /// dedup reservation (if any) is released before returning, so the retry
    /// is admitted fresh.
    pub fn submit_or_return(
        &self,
        payload: CheckinPayload,
    ) -> std::result::Result<CompletionHandle, SubmitRejection> {
        if let Err(e) = self.validate(&payload) {
            return Err(SubmitRejection::Refused(e));
        }
        // Duplicate detection comes first: a retry of an already-applied
        // checkin must get its original ack replayed even when the device has
        // since exhausted its budget (the original WAS served). A duplicate of
        // a still-in-flight checkin is answered with retryable backpressure —
        // by the time the client retries, the original has resolved.
        let dedup_key = (payload.nonce != 0).then_some((payload.device_id, payload.nonce));
        if let Some(key) = dedup_key {
            match self.inner.dedup.lock().admit(key) {
                Admission::Replay(outcome) => {
                    self.inner.metrics.incr(CounterId::DedupReplays);
                    let (tx, rx) = mpsc::channel();
                    let _ = tx.send(CheckinOutcome {
                        deduped: true,
                        ..outcome
                    });
                    return Ok(CompletionHandle { rx });
                }
                Admission::InFlight => {
                    self.inner.metrics.incr(CounterId::DedupInflightBusy);
                    return Err(SubmitRejection::Busy {
                        payload,
                        retry_after_ms: self.inner.settings.retry_after_ms,
                    });
                }
                Admission::Fresh => {}
            }
        }
        let abandon = |this: &Self| {
            if let Some(key) = dedup_key {
                this.inner.dedup.lock().abandon(key);
            }
        };
        if self.budget_exhausted(payload.device_id) {
            abandon(self);
            self.inner.metrics.incr(CounterId::BudgetRejections);
            return Err(SubmitRejection::Refused(AggError::BudgetExhausted {
                device_id: payload.device_id,
            }));
        }
        let (tx, rx) = mpsc::channel();
        let device_id = payload.device_id;
        let job = Job {
            payload,
            reply: tx,
            submitted: self.inner.metrics.start(),
        };
        match self.inner.queue.try_push(job) {
            Ok(()) => {
                self.inner.metrics.gauge_add(GaugeId::QueueDepth, 1);
                self.inner.metrics.span(Stage::QueueAdmit, device_id);
                Ok(CompletionHandle { rx })
            }
            Err(PushError::Full(job)) => {
                abandon(self);
                self.inner.metrics.incr(CounterId::BusyRejections);
                self.inner.metrics.span(Stage::QueuePark, device_id);
                Err(SubmitRejection::Busy {
                    payload: job.payload,
                    retry_after_ms: self.inner.settings.retry_after_ms,
                })
            }
            Err(PushError::Closed(_)) => {
                abandon(self);
                Err(SubmitRejection::Refused(AggError::ShuttingDown))
            }
        }
    }

    /// Submits a checkin and blocks until its epoch is applied.
    pub fn checkin(&self, payload: CheckinPayload) -> Result<CheckinOutcome> {
        self.submit(payload)?.wait()
    }

    /// The open round's published parameters, or `None` on a free-running
    /// server. Reads the round mirror — never the core lock — so checkout
    /// handlers can attach `RoundParams` to every response for free.
    pub fn round_info(&self) -> Option<RoundInfo> {
        *self.inner.rounds.read()
    }

    /// Submits one masked round contribution.
    ///
    /// Unlike free-run checkins, round submissions bypass the ingest queue and
    /// shard accumulators: the masked words are opaque until the whole cohort
    /// is unmasked together, so the submission goes straight into the core
    /// server's pending set (WAL-logged first when durable) and is applied —
    /// and ε-charged — when the round finalizes. If this submission completes
    /// the cohort, the round is finalized before the ack returns.
    pub fn submit_round(
        &self,
        round_id: u64,
        submission: PendingSubmission,
    ) -> Result<RoundSubmitOutcome> {
        let inner = &self.inner;
        if submission.words.len() != inner.param_dim {
            return Err(AggError::Invalid(format!(
                "round submission has {} masked words, expected {}",
                submission.words.len(),
                inner.param_dim
            )));
        }
        if submission.label_counts.len() != inner.num_classes {
            return Err(AggError::Invalid(format!(
                "round submission reports {} label counts, expected {}",
                submission.label_counts.len(),
                inner.num_classes
            )));
        }
        if submission.num_samples == 0 {
            return Err(AggError::Invalid(
                "round submission must cover at least one sample".into(),
            ));
        }
        if self.budget_exhausted(submission.device_id) {
            inner.metrics.incr(CounterId::BudgetRejections);
            return Err(AggError::BudgetExhausted {
                device_id: submission.device_id,
            });
        }
        let device_id = submission.device_id;
        let checkout_iteration = submission.checkout_iteration;
        let logged = inner.store.is_some().then(|| submission.clone());
        let mut core = inner.core.lock();
        match core
            .round_submit(round_id, submission)
            .map_err(AggError::Core)?
        {
            RoundAdmission::Accepted { cohort_complete } => {
                if let (Some(store), Some(sub)) = (&inner.store, &logged) {
                    if let Err(e) = store.lock().log_round_submit(round_id, sub) {
                        // The pending entry stays (there is no un-submit), but
                        // no ack is sent: a crash loses exactly what the device
                        // believes unacknowledged, and a live retry resolves as
                        // a duplicate of a contribution that did stand.
                        drop(core);
                        inner.metrics.incr(CounterId::WalErrors);
                        eprintln!("crowd-agg: WAL append failed, refusing round submission: {e}");
                        return Err(AggError::ShuttingDown);
                    }
                }
                let outcome = CheckinOutcome {
                    accepted: true,
                    iteration: core.iteration(),
                    stopped: core.stopped(),
                    staleness: core.iteration().saturating_sub(checkout_iteration),
                    deduped: false,
                };
                inner.metrics.incr(CounterId::RoundSubmissions);
                inner.metrics.span(Stage::ShardIngest, device_id);
                if cohort_complete {
                    finalize_round_locked(inner, core);
                    finalize_due_rounds(inner);
                } else {
                    drop(core);
                }
                Ok(RoundSubmitOutcome::Acked(outcome))
            }
            RoundAdmission::Duplicate => {
                let outcome = CheckinOutcome {
                    accepted: true,
                    iteration: core.iteration(),
                    stopped: core.stopped(),
                    staleness: 0,
                    deduped: true,
                };
                drop(core);
                inner.metrics.incr(CounterId::DedupReplays);
                Ok(RoundSubmitOutcome::Acked(outcome))
            }
            RoundAdmission::Outdated { current_round } => {
                drop(core);
                inner.metrics.incr(CounterId::RoundOutdatedRejections);
                Ok(RoundSubmitOutcome::Outdated { current_round })
            }
            RoundAdmission::NotSelected => {
                drop(core);
                Err(AggError::Invalid(format!(
                    "device {device_id} is not in round {round_id}'s cohort"
                )))
            }
        }
    }

    fn validate(&self, payload: &CheckinPayload) -> Result<()> {
        if payload.gradient.dim() != self.inner.param_dim {
            return Err(AggError::Invalid(format!(
                "checkin gradient has dimension {}, expected {}",
                payload.gradient.dim(),
                self.inner.param_dim
            )));
        }
        if payload.label_counts.len() != self.inner.num_classes {
            return Err(AggError::Invalid(format!(
                "checkin reports {} label counts, expected {}",
                payload.label_counts.len(),
                self.inner.num_classes
            )));
        }
        if payload.num_samples == 0 {
            return Err(AggError::Invalid(
                "checkin must cover at least one sample".into(),
            ));
        }
        Ok(())
    }

    /// Server iteration (number of applied epochs).
    pub fn iteration(&self) -> u64 {
        self.inner.core.lock().iteration()
    }

    /// A copy of the current parameters.
    pub fn params(&self) -> Vector {
        self.inner.core.lock().params().clone()
    }

    /// Whether the stopping criterion has been met.
    pub fn stopped(&self) -> bool {
        self.inner.core.lock().stopped()
    }

    /// Total samples reported across devices.
    pub fn total_samples(&self) -> u64 {
        self.inner.core.lock().total_samples()
    }

    /// The privately estimated error rate, if any samples were reported.
    pub fn error_estimate(&self) -> Option<f64> {
        self.inner.core.lock().error_estimate()
    }

    /// Number of devices that have checked in at least once.
    pub fn active_devices(&self) -> usize {
        self.inner.core.lock().active_devices()
    }

    /// `true` when the device has spent its entire privacy budget and the
    /// server refuses to query it further.
    pub fn budget_exhausted(&self, device_id: u64) -> bool {
        self.inner.exhausted.read().contains(&device_id)
    }

    /// The per-device ε ledger, ascending by device id.
    pub fn budget_ledger(&self) -> Vec<(u64, f64)> {
        self.inner.core.lock().budget_ledger()
    }

    /// A point-in-time snapshot of the runtime's metrics (`epoch_merges`,
    /// `checkins_applied`, `busy_rejections`, the `checkin_latency_us`
    /// histogram, …), sorted by name for deterministic rendering.
    pub fn stats(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The live metric registry the runtime records into. Servers clone this
    /// to instrument their own request path and answer metrics scrapes from
    /// one shared registry.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.metrics)
    }

    /// Settles the open cohort round immediately, exactly as a graceful
    /// shutdown would: pending submissions are finalized (their masks
    /// cancelled, their ε charged) and the successor round is published. A
    /// no-op when rounds are disabled or nothing is pending. Harnesses call
    /// this before reading the ledger of a still-running server, so
    /// acknowledged round submissions are never observed uncharged.
    pub fn settle_rounds(&self) {
        let core = self.inner.core.lock();
        if core.round_pending() > 0 {
            finalize_round_locked(&self.inner, core);
            finalize_due_rounds(&self.inner);
        }
    }

    /// Stops accepting checkins, applies everything already admitted, joins
    /// the worker pool, and — when durable — writes a final checkpoint
    /// snapshot (compacting the WAL away). Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.finish(false);
    }

    /// Crash-stops the runtime, simulating a SIGKILL for recovery testing:
    /// admitted-but-unapplied checkins are dropped (their waiters see
    /// [`AggError::ShuttingDown`]) and **no** final flush or checkpoint is
    /// written — the data directory is left exactly as an abrupt process death
    /// would leave it, so a subsequent open exercises real WAL replay.
    pub fn kill(&self) {
        self.finish(true);
    }

    fn finish(&self, crash: bool) {
        if crash {
            self.inner.crashed.store(true, Ordering::SeqCst);
        }
        self.inner.queue.close();
        let workers: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        let joined_any = !workers.is_empty();
        for worker in workers {
            let _ = worker.join();
        }
        // Checkpoint once, on the call that actually tore the runtime down,
        // and never after a crash-stop.
        if joined_any && !self.inner.crashed.load(Ordering::SeqCst) {
            // A graceful shutdown settles the open round first: its pending
            // submissions were acknowledged, so their ε must be charged (via
            // the finalization epoch) before the checkpoint freezes the
            // ledger.
            let core = self.inner.core.lock();
            if core.round_pending() > 0 {
                finalize_round_locked(&self.inner, core);
                finalize_due_rounds(&self.inner);
            } else {
                drop(core);
            }
            if let Some(store) = &self.inner.store {
                let core = self.inner.core.lock();
                let mut store = store.lock();
                if store.snapshot(&core.export_state()).is_err() {
                    self.inner.metrics.incr(CounterId::SnapshotErrors);
                }
            }
        }
    }
}

impl<M: Model + Send + 'static> Drop for AggRuntime<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Finalizes the open round while holding the core lock: logs the round
/// boundary, publishes the successor round's parameters, and — when the
/// cohort contributed — pushes the unmasked finalization epoch through the
/// standard durable apply path. Consumes the lock.
fn finalize_round_locked<M: Model>(inner: &Inner<M>, mut core: MutexGuard<'_, Server<M>>) {
    let start = inner.metrics.start();
    let (closed, epoch) = match core.finalize_round() {
        Ok(parts) => parts,
        Err(_) => {
            drop(core);
            inner.metrics.incr(CounterId::ApplyErrors);
            return;
        }
    };
    if let Some(store) = &inner.store {
        if let Err(e) = store.lock().log_round_advance(closed) {
            inner.metrics.incr(CounterId::WalErrors);
            eprintln!("crowd-agg: WAL append failed on round-{closed} advance: {e}");
        }
    }
    *inner.rounds.write() = core.round_info();
    match epoch {
        Some(epoch) => {
            let count = epoch.checkin_count;
            let (_, applied) = durable_apply(inner, core, &epoch);
            if applied {
                inner.metrics.incr(CounterId::RoundsFinalized);
                inner.metrics.add(CounterId::CheckinsApplied, count);
            }
        }
        None => {
            drop(core);
            inner.metrics.incr(CounterId::RoundsExpired);
        }
    }
    inner
        .metrics
        .observe_since(HistogramId::RoundFinalizeUs, start);
}

/// Finalizes rounds whose deadline the iteration clock has passed. Loops
/// because a finalization epoch itself advances the clock (possibly expiring
/// its freshly opened successor); an expiry with no submissions re-opens at
/// the current iteration, so the loop always terminates.
fn finalize_due_rounds<M: Model>(inner: &Inner<M>) {
    // Scoped so the `agg.rounds` read guard drops before the loop takes
    // `agg.core` (core → rounds is the documented acquisition order).
    {
        let rounds = inner.rounds.read();
        if rounds.is_none() {
            return;
        }
    }
    loop {
        let core = inner.core.lock();
        if !core.round_expired() {
            return;
        }
        finalize_round_locked(inner, core);
    }
}

fn worker_loop<M: Model>(inner: Arc<Inner<M>>) {
    let flush_on_idle = inner.settings.flush_idle_ms > 0;
    let idle = if flush_on_idle {
        Duration::from_millis(inner.settings.flush_idle_ms as u64)
    } else {
        // Without idle flushing, the timeout only paces shutdown polling.
        Duration::from_millis(50)
    };
    // Clamp instead of casting: `u64::MAX as i64` would wrap to -1 and make
    // "epoch never closes by size" close on every single ingest.
    let epoch_threshold = inner.settings.epoch_size.min(i64::MAX as u64) as i64;
    loop {
        match inner.queue.pop_timeout(idle) {
            Pop::Item(job) => {
                inner.metrics.gauge_add(GaugeId::QueueDepth, -1);
                // Per-checkin epochs must stay per-checkin even when several
                // workers race (a shard drain would coalesce concurrently
                // ingested payloads into one epoch and under-count server
                // iterations), so epoch_size = 1 bypasses the shards and
                // applies each payload as its own singleton epoch.
                if inner.settings.epoch_size == 1 {
                    apply_singleton(&inner, job);
                    continue;
                }
                // Ingest first, count after. A concurrent merge may drain the
                // payload before its increment lands, sending `pending`
                // transiently negative (it is signed for exactly this reason);
                // the increment then restores it. Counting first instead would
                // let a merge fire between this worker's increment and its
                // ingest, stranding the not-yet-ingested checkin below the
                // epoch threshold with nothing left to trigger a flush.
                let waiter = Waiter {
                    checkout_iteration: job.payload.checkout_iteration,
                    device_id: job.payload.device_id,
                    nonce: job.payload.nonce,
                    reply: job.reply,
                    submitted: job.submitted,
                };
                if let Err(rejected) = inner.shards.ingest(&job.payload, waiter) {
                    // Unreachable for payloads that passed submit-time
                    // validation; fail the one checkin, not the worker. The
                    // nonce is released rather than completed: nothing was
                    // applied, so a retry must be admitted fresh.
                    if rejected.nonce != 0 {
                        inner
                            .dedup
                            .lock()
                            .abandon((rejected.device_id, rejected.nonce));
                    }
                    let snap = inner.snapshot.read().clone();
                    inner.metrics.incr(CounterId::IngestErrors);
                    let _ = rejected.reply.send(CheckinOutcome {
                        accepted: false,
                        iteration: snap.iteration,
                        stopped: snap.stopped,
                        staleness: 0,
                        deduped: false,
                    });
                    continue;
                }
                inner
                    .metrics
                    .span(Stage::ShardIngest, job.payload.device_id);
                let counted = inner.pending.fetch_add(1, Ordering::SeqCst) + 1;
                if counted >= epoch_threshold {
                    merge(&inner);
                }
            }
            Pop::TimedOut => {
                if flush_on_idle && inner.pending.load(Ordering::SeqCst) > 0 {
                    merge(&inner);
                }
            }
            Pop::Closed => {
                // Final flush: apply whatever was admitted before shutdown —
                // unless the runtime is crash-stopping, where dropping the
                // admitted tail is exactly what a SIGKILL would do.
                if !inner.crashed.load(Ordering::SeqCst) && inner.pending.load(Ordering::SeqCst) > 0
                {
                    merge(&inner);
                }
                return;
            }
        }
    }
}

/// WAL-logs (when durable) and applies one epoch, consuming the held core
/// lock. Returns the outcome to fan out and whether the epoch was applied.
///
/// The order is the durability contract: append (group-committing the whole
/// epoch in one frame) → apply → update the exhausted set → snapshot if due →
/// publish. A failed append fails the epoch *without* applying it — no checkin
/// is ever acknowledged that recovery could not reproduce.
fn durable_apply<M: Model>(
    inner: &Inner<M>,
    mut core: MutexGuard<'_, Server<M>>,
    epoch: &EpochAggregate,
) -> (CheckinOutcome, bool) {
    let merge_start = inner.metrics.start();
    // The ε charges feed both the WAL record (durable runtimes) and the
    // ε-spend distribution (whenever budget accounting is on); skip the
    // recompute when neither applies.
    let charges = if inner.store.is_some() || !core.config().budget.is_disabled() {
        Some(core.epoch_charges(epoch))
    } else {
        None
    };
    if let Some(store) = &inner.store {
        let mut store = store.lock();
        if let Err(e) = store.log_epoch(core.iteration(), epoch, charges.as_deref().unwrap_or(&[]))
        {
            let outcome = CheckinOutcome {
                accepted: false,
                iteration: core.iteration(),
                stopped: core.stopped(),
                staleness: 0,
                deduped: false,
            };
            drop(store);
            drop(core);
            inner.metrics.incr(CounterId::WalErrors);
            eprintln!("crowd-agg: WAL append failed, refusing epoch: {e}");
            return (outcome, false);
        }
    }
    match core.apply_aggregate(epoch) {
        Ok(outcome) => {
            let snapshot = Arc::new(ParamSnapshot {
                iteration: core.iteration(),
                params: core.params().clone(),
                stopped: outcome.stopped,
            });
            if !core.config().budget.is_disabled() {
                let mut exhausted = inner.exhausted.write();
                for stats in &epoch.device_stats {
                    if core.budget_exhausted(stats.device_id) {
                        exhausted.insert(stats.device_id);
                    }
                }
            }
            if let Some(store) = &inner.store {
                let mut store = store.lock();
                if store.note_applied() {
                    match store.snapshot(&core.export_state()) {
                        Ok(()) => inner.metrics.incr(CounterId::Snapshots),
                        Err(_) => inner.metrics.incr(CounterId::SnapshotErrors),
                    }
                }
            }
            *inner.snapshot.write() = snapshot;
            drop(core);
            inner.metrics.incr(CounterId::EpochMerges);
            inner
                .metrics
                .observe_since(HistogramId::EpochMergeUs, merge_start);
            inner.metrics.span(Stage::EpochMerge, outcome.iteration);
            if let Some(charges) = &charges {
                for &(_, eps) in charges.iter() {
                    inner
                        .metrics
                        .observe(HistogramId::EpsSpendMicroeps, microeps(eps));
                }
            }
            (outcome, true)
        }
        Err(_) => {
            // Unreachable for payloads that passed submit-time validation; fail
            // the epoch's checkins without taking a step.
            let outcome = CheckinOutcome {
                accepted: false,
                iteration: core.iteration(),
                stopped: core.stopped(),
                staleness: 0,
                deduped: false,
            };
            drop(core);
            inner.metrics.incr(CounterId::ApplyErrors);
            (outcome, false)
        }
    }
}

/// ε in integer micro-ε, the unit of the `eps_spend_microeps` histogram
/// (saturating; non-finite or negative charges record as zero).
fn microeps(eps: f64) -> u64 {
    if eps.is_finite() && eps > 0.0 {
        (eps * 1e6).round().min(u64::MAX as f64) as u64
    } else {
        0
    }
}

/// Applies one checkin as its own epoch (the `epoch_size = 1` fast path): the
/// classic Server Routine 2 update, bit for bit, one iteration per checkin
/// (a singleton [`EpochAggregate`] is exactly `Server::checkin`).
fn apply_singleton<M: Model>(inner: &Inner<M>, job: Job) {
    let epoch = EpochAggregate::from_payload(&job.payload);
    let core = inner.core.lock();
    let (outcome, applied) = durable_apply(inner, core, &epoch);
    if applied {
        inner.metrics.incr(CounterId::CheckinsApplied);
        // Record the outcome BEFORE acking, so a duplicate that races the ack
        // can never slip past the table and be applied a second time.
        record_dedup(inner, job.payload.device_id, job.payload.nonce, outcome);
    } else if job.payload.nonce != 0 {
        // Nothing was applied; release the nonce so a retry is admitted fresh.
        inner
            .dedup
            .lock()
            .abandon((job.payload.device_id, job.payload.nonce));
    }
    // The apply advanced the iteration clock; settle any now-due round before
    // acking, so a caller that has its ack also sees the finalized round.
    if applied {
        finalize_due_rounds(inner);
    }
    inner
        .metrics
        .observe_since(HistogramId::CheckinLatencyUs, job.submitted);
    inner.metrics.span(Stage::Ack, job.payload.device_id);
    let _ = job.reply.send(outcome);
}

/// Marks a checkin's nonce as completed with its outcome (no-op for nonce 0).
fn record_dedup<M: Model>(inner: &Inner<M>, device_id: u64, nonce: u64, outcome: CheckinOutcome) {
    if nonce != 0 {
        inner.dedup.lock().complete((device_id, nonce), outcome);
    }
}

/// Applies one epoch: drain the shards (fixed merge order), take one projected
/// SGD step on the core server, publish the new snapshot, wake the waiters.
fn merge<M: Model>(inner: &Inner<M>) {
    let core = inner.core.lock();
    let drained = inner.shards.drain();
    let Some(epoch) = drained.epoch else {
        return;
    };
    inner
        .pending
        .fetch_sub(drained.count as i64, Ordering::SeqCst);
    let (outcome, applied) = durable_apply(inner, core, &epoch);
    // The epoch has been applied (or refused); either way its merged gradient
    // buffer goes back to the shard pool for the next merge.
    inner.shards.recycle_epoch(epoch);
    let waiters = drained.waiters;
    if applied {
        inner.metrics.add(CounterId::CheckinsApplied, drained.count);
        if drained.count > 1 {
            inner.metrics.incr(CounterId::BatchedEpochs);
        }
    }
    // The apply advanced the iteration clock; settle any now-due round before
    // acking, so a caller that has its ack also sees the finalized round.
    if applied {
        finalize_due_rounds(inner);
    }
    // Staleness is per-checkin: measured against the iteration the epoch was
    // applied at (the pre-update iteration, as in the classic checkin path).
    let pre_iteration = outcome.iteration - u64::from(outcome.accepted);
    for waiter in waiters {
        let per_checkin = CheckinOutcome {
            accepted: outcome.accepted,
            iteration: outcome.iteration,
            stopped: outcome.stopped,
            staleness: pre_iteration.saturating_sub(waiter.checkout_iteration),
            deduped: false,
        };
        if applied {
            // The epoch (and its ε charges) went through: remember the
            // per-checkin ack so duplicates replay it instead of re-applying.
            record_dedup(inner, waiter.device_id, waiter.nonce, per_checkin);
        } else if waiter.nonce != 0 {
            inner.dedup.lock().abandon((waiter.device_id, waiter.nonce));
        }
        inner
            .metrics
            .observe_since(HistogramId::CheckinLatencyUs, waiter.submitted);
        inner.metrics.span(Stage::Ack, waiter.device_id);
        let _ = waiter.reply.send(per_checkin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;

    fn payload(device_id: u64, grad: Vec<f64>, checkout: u64) -> CheckinPayload {
        CheckinPayload {
            device_id,
            checkout_iteration: checkout,
            nonce: 0,
            gradient: Vector::from_vec(grad).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    fn runtime(config: ServerConfig) -> AggRuntime<MulticlassLogistic> {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        AggRuntime::new(Server::new(model, config).unwrap()).unwrap()
    }

    #[test]
    fn checkout_reads_snapshot_without_blocking() {
        let rt = runtime(ServerConfig::new());
        let snap = rt.snapshot();
        assert_eq!(snap.iteration, 0);
        assert_eq!(snap.params.len(), 6);
        assert!(!snap.stopped);
        let ticket = rt.checkout();
        assert_eq!(ticket.iteration, 0);
        rt.shutdown();
    }

    #[test]
    fn checkin_applies_update_and_advances_snapshot() {
        let rt = runtime(ServerConfig::new().with_rate_constant(1.0));
        let outcome = rt
            .checkin(payload(3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0))
            .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.iteration, 1);
        assert_eq!(outcome.staleness, 0);
        // η(1) = 1, so w moved by -1 on the first coordinate; the snapshot the
        // next checkout sees reflects the update.
        let snap = rt.snapshot();
        assert_eq!(snap.iteration, 1);
        assert!((snap.params[0] + 1.0).abs() < 1e-12);
        assert_eq!(rt.iteration(), 1);
        assert_eq!(rt.total_samples(), 2);
        assert_eq!(rt.active_devices(), 1);
        assert_eq!(rt.stats().get("checkins_applied"), 1);
        rt.shutdown();
    }

    #[test]
    fn invalid_payloads_fail_fast() {
        let rt = runtime(ServerConfig::new());
        assert!(matches!(
            rt.checkin(payload(0, vec![1.0; 5], 0)),
            Err(AggError::Invalid(_))
        ));
        let mut zero = payload(0, vec![0.0; 6], 0);
        zero.num_samples = 0;
        assert!(matches!(rt.checkin(zero), Err(AggError::Invalid(_))));
        let mut counts = payload(0, vec![0.0; 6], 0);
        counts.label_counts = vec![0, 0];
        assert!(matches!(rt.checkin(counts), Err(AggError::Invalid(_))));
        assert_eq!(rt.iteration(), 0);
        rt.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One-deep queue and an epoch size nothing reaches without the idle
        // flush: submissions beyond the first are rejected with a retry hint.
        let config = ServerConfig::new().with_agg(crowd_core::config::AggSettings {
            shard_count: 2,
            queue_bound: 1,
            epoch_size: u64::MAX,
            worker_threads: 1,
            retry_after_ms: 7,
            flush_idle_ms: 0,
        });
        let rt = runtime(config);
        let mut handles = Vec::new();
        let mut busy = 0;
        for i in 0..50u64 {
            match rt.submit(payload(i, vec![0.1; 6], 0)) {
                Ok(h) => handles.push(h),
                Err(AggError::Busy { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, 7);
                    busy += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(busy > 0, "a 1-deep queue must reject under a burst of 50");
        assert_eq!(rt.stats().get("busy_rejections"), busy);
        // Shutdown flushes the admitted checkins; every handle resolves.
        rt.shutdown();
        for h in handles {
            let outcome = h.wait().unwrap();
            assert!(outcome.accepted);
        }
    }

    #[test]
    fn batched_epochs_apply_mean_gradient() {
        let config =
            ServerConfig::new()
                .with_rate_constant(1.0)
                .with_agg(crowd_core::config::AggSettings {
                    shard_count: 4,
                    queue_bound: 64,
                    epoch_size: 4,
                    worker_threads: 1,
                    retry_after_ms: 1,
                    flush_idle_ms: 0,
                });
        let rt = runtime(config);
        let handles: Vec<CompletionHandle> = (0..4u64)
            .map(|d| {
                rt.submit(payload(d, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0))
                    .unwrap()
            })
            .collect();
        for h in handles {
            let outcome = h.wait_timeout(Duration::from_secs(10)).unwrap();
            assert!(outcome.accepted);
            assert_eq!(outcome.iteration, 1, "4 checkins fold into ONE epoch");
        }
        // Mean gradient (1, 0, …) with η(1) = 1 moves w by exactly -1.
        assert!((rt.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(rt.iteration(), 1);
        assert_eq!(rt.total_samples(), 8);
        assert_eq!(rt.stats().get("batched_epochs"), 1);
        rt.shutdown();
    }

    #[test]
    fn idle_flush_applies_partial_epochs() {
        let config = ServerConfig::new().with_agg(crowd_core::config::AggSettings {
            shard_count: 2,
            queue_bound: 16,
            epoch_size: 1000,
            worker_threads: 1,
            retry_after_ms: 1,
            flush_idle_ms: 1,
        });
        let rt = runtime(config);
        // Far fewer checkins than the epoch size: the idle flush must still
        // apply them promptly rather than stalling the devices forever.
        let outcome = rt
            .submit(payload(0, vec![0.5; 6], 0))
            .unwrap()
            .wait_timeout(Duration::from_secs(10))
            .unwrap();
        assert!(outcome.accepted);
        assert_eq!(rt.iteration(), 1);
        rt.shutdown();
    }

    #[test]
    fn stopped_server_rejects_but_counts() {
        let rt = runtime(ServerConfig::new().with_max_iterations(1));
        assert!(rt.checkin(payload(0, vec![0.1; 6], 0)).unwrap().accepted);
        let second = rt.checkin(payload(1, vec![0.1; 6], 1)).unwrap();
        assert!(!second.accepted);
        assert!(second.stopped);
        assert!(rt.snapshot().stopped);
        assert_eq!(rt.iteration(), 1);
        // The rejected checkin's statistics still count (Server Routine 2).
        assert_eq!(rt.total_samples(), 4);
        rt.shutdown();
    }

    use crowd_store::testutil::temp_dir;

    fn durable_runtime(
        config: &ServerConfig,
    ) -> (AggRuntime<MulticlassLogistic>, crowd_store::RecoveryReport) {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let (store, server, report) = crowd_store::Store::open(model, config.clone()).unwrap();
        (AggRuntime::with_store(server, Some(store)).unwrap(), report)
    }

    #[test]
    fn kill_then_reopen_recovers_bitwise() {
        let dir = temp_dir("kill");
        let config = ServerConfig::new()
            .with_rate_constant(1.0)
            .with_budget(0.2, f64::INFINITY)
            .with_data_dir(&dir)
            .with_snapshot_every(2);
        let (rt, report) = durable_runtime(&config);
        assert!(!report.recovered());
        for step in 0..5u64 {
            let g: Vec<f64> = (0..6).map(|i| 0.07 * (i as f64 + step as f64)).collect();
            assert!(rt.checkin(payload(step % 2, g, step)).unwrap().accepted);
        }
        let params_at_kill = rt.params();
        let ledger_at_kill = rt.budget_ledger();
        // Crash-stop: no final flush, no checkpoint — disk is as SIGKILL leaves it.
        rt.kill();

        let (rt, report) = durable_runtime(&config);
        assert!(report.recovered());
        // snapshot_every = 2 ⇒ the last snapshot covered epoch 4; the tail is
        // replayed from the WAL.
        assert!(report.from_snapshot);
        assert_eq!(report.replayed_epochs, 1);
        assert_eq!(rt.iteration(), 5);
        assert_eq!(rt.params().as_slice(), params_at_kill.as_slice());
        assert_eq!(rt.budget_ledger(), ledger_at_kill);
        rt.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_shutdown_checkpoints_and_compacts() {
        let dir = temp_dir("clean");
        let config = ServerConfig::new()
            .with_rate_constant(1.0)
            .with_data_dir(&dir)
            .with_snapshot_every(100);
        let (rt, _) = durable_runtime(&config);
        for step in 0..3u64 {
            rt.checkin(payload(step, vec![0.1; 6], step)).unwrap();
        }
        let params = rt.params();
        rt.shutdown();
        // The shutdown checkpoint makes recovery snapshot-only: no WAL replay.
        let (rt, report) = durable_runtime(&config);
        assert!(report.from_snapshot);
        assert_eq!(report.replayed_epochs, 0);
        assert_eq!(rt.iteration(), 3);
        assert_eq!(rt.params().as_slice(), params.as_slice());
        rt.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_devices_are_refused_and_stay_refused_after_restart() {
        let dir = temp_dir("budget");
        // Two 0.5-ε checkins reach the 1.0 ceiling.
        let config = ServerConfig::new()
            .with_budget(0.5, 1.0)
            .with_data_dir(&dir)
            .with_snapshot_every(1);
        let (rt, _) = durable_runtime(&config);
        assert!(rt.checkin(payload(0, vec![0.1; 6], 0)).unwrap().accepted);
        assert!(!rt.budget_exhausted(0));
        assert!(rt.checkin(payload(0, vec![0.1; 6], 1)).unwrap().accepted);
        assert!(rt.budget_exhausted(0));
        match rt.checkin(payload(0, vec![0.1; 6], 2)) {
            Err(AggError::BudgetExhausted { device_id: 0 }) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // Other devices are unaffected.
        assert!(rt.checkin(payload(1, vec![0.1; 6], 2)).unwrap().accepted);
        assert_eq!(rt.stats().get("budget_rejections"), 1);
        rt.kill();

        // The refusal must survive the crash: the ledger is durable state.
        let (rt, _) = durable_runtime(&config);
        assert!(rt.budget_exhausted(0));
        assert!(matches!(
            rt.checkin(payload(0, vec![0.1; 6], 3)),
            Err(AggError::BudgetExhausted { device_id: 0 })
        ));
        assert!(!rt.budget_exhausted(1));
        assert_eq!(rt.budget_ledger(), vec![(0, 1.0), (1, 0.5)]);
        rt.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_nonce_replays_original_ack_without_reapplying() {
        let rt = runtime(ServerConfig::new().with_rate_constant(1.0));
        let mut p = payload(3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0);
        p.nonce = 7;
        let original = rt.checkin(p.clone()).unwrap();
        assert!(original.accepted);
        assert_eq!(original.iteration, 1);
        let params_after_first = rt.params();
        // The same (device, nonce) again — a retry or a network duplicate —
        // must replay the original ack (flagged as a dedup) and leave the
        // parameters untouched.
        let replayed = rt.checkin(p).unwrap();
        assert!(replayed.deduped);
        assert_eq!(
            CheckinOutcome {
                deduped: false,
                ..replayed
            },
            original
        );
        assert_eq!(rt.iteration(), 1);
        assert_eq!(rt.params().as_slice(), params_after_first.as_slice());
        assert_eq!(rt.stats().get("dedup_replays"), 1);
        assert_eq!(rt.stats().get("checkins_applied"), 1);
        // A different nonce from the same device applies normally.
        let mut next = payload(3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 1);
        next.nonce = 8;
        assert!(rt.checkin(next).unwrap().accepted);
        assert_eq!(rt.iteration(), 2);
        rt.shutdown();
    }

    #[test]
    fn duplicate_nonce_is_not_double_charged() {
        let rt = runtime(ServerConfig::new().with_budget(0.5, f64::INFINITY));
        let mut p = payload(1, vec![0.1; 6], 0);
        p.nonce = 11;
        assert!(rt.checkin(p.clone()).unwrap().accepted);
        assert!(rt.checkin(p).unwrap().accepted); // replay, not re-apply
                                                  // One application, one charge: the ledger must not see the duplicate.
        assert_eq!(rt.budget_ledger(), vec![(1, 0.5)]);
        assert_eq!(rt.total_samples(), 2);
        rt.shutdown();
    }

    #[test]
    fn nonce_zero_disables_dedup() {
        let rt = runtime(ServerConfig::new());
        let p = payload(0, vec![0.1; 6], 0);
        assert_eq!(p.nonce, 0);
        assert!(rt.checkin(p.clone()).unwrap().accepted);
        assert!(rt.checkin(p).unwrap().accepted);
        // Legacy behaviour: both applied.
        assert_eq!(rt.iteration(), 2);
        assert_eq!(rt.stats().get("dedup_replays"), 0);
        rt.shutdown();
    }

    fn round_config(population: u64, fraction: f64, deadline: u32) -> ServerConfig {
        ServerConfig::new().with_rate_constant(1.0).with_rounds(
            crowd_core::RoundSettings::new(population)
                .with_select_fraction(fraction)
                .with_deadline_epochs(deadline),
        )
    }

    /// A masked submission for `device_id` against the runtime's open round,
    /// carrying the given gradient.
    fn masked(
        rt: &AggRuntime<MulticlassLogistic>,
        device_id: u64,
        gradient: &[f64],
    ) -> (u64, PendingSubmission) {
        let info = rt.round_info().unwrap();
        let cohort = crowd_rounds::cohort(info.seed, info.population, info.select_fraction);
        let masks = crowd_rounds::net_mask(info.seed, device_id, &cohort, gradient.len());
        (
            info.round_id,
            PendingSubmission {
                device_id,
                nonce: 500 + device_id,
                checkout_iteration: rt.iteration(),
                words: crowd_rounds::mask(gradient, &masks),
                num_samples: 2,
                error_count: 1,
                label_counts: vec![1, 1, 0],
            },
        )
    }

    #[test]
    fn complete_cohort_finalizes_to_the_unmasked_mean() {
        // Fraction 1.0: all 3 devices are selected.
        let rt = runtime(round_config(3, 1.0, 100));
        assert_eq!(rt.round_info().unwrap().round_id, 1);
        let gradient = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for device in 0..3u64 {
            let (round_id, sub) = masked(&rt, device, &gradient);
            match rt.submit_round(round_id, sub).unwrap() {
                RoundSubmitOutcome::Acked(outcome) => {
                    assert!(outcome.accepted);
                    assert!(!outcome.deduped);
                }
                other => panic!("expected ack, got {other:?}"),
            }
        }
        // The third submission completed the cohort: one epoch applied, the
        // next round opened, and the step equals the unmasked mean gradient
        // (all three sent the same one) with η(1) = 1.
        assert_eq!(rt.iteration(), 1);
        assert_eq!(rt.round_info().unwrap().round_id, 2);
        assert!((rt.params()[0] + 1.0).abs() < 1e-12);
        let stats = rt.stats();
        assert_eq!(stats.get("round_submissions"), 3);
        assert_eq!(stats.get("rounds_finalized"), 1);
        assert_eq!(stats.get("checkins_applied"), 3);
        rt.shutdown();
    }

    #[test]
    fn round_retry_is_deduped_and_stale_round_is_outdated() {
        let rt = runtime(round_config(3, 1.0, 100));
        let gradient = [0.5; 6];
        let (round_id, sub) = masked(&rt, 0, &gradient);
        assert!(matches!(
            rt.submit_round(round_id, sub.clone()).unwrap(),
            RoundSubmitOutcome::Acked(o) if !o.deduped
        ));
        // A retried submission (ack lost on the wire) replays, not re-applies.
        assert!(matches!(
            rt.submit_round(round_id, sub.clone()).unwrap(),
            RoundSubmitOutcome::Acked(o) if o.deduped
        ));
        // A submission against a round that is not current resyncs the device.
        match rt.submit_round(round_id + 7, sub).unwrap() {
            RoundSubmitOutcome::Outdated { current_round } => {
                assert_eq!(current_round, round_id)
            }
            other => panic!("expected outdated, got {other:?}"),
        }
        let stats = rt.stats();
        assert_eq!(stats.get("dedup_replays"), 1);
        assert_eq!(stats.get("round_outdated_rejections"), 1);
        assert_eq!(rt.iteration(), 0, "no cohort completion, no epoch");
        rt.shutdown();
    }

    #[test]
    fn partial_cohort_is_finalized_by_graceful_shutdown() {
        let rt = runtime(round_config(4, 1.0, 100));
        let gradient = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for device in 0..2u64 {
            let (round_id, sub) = masked(&rt, device, &gradient);
            rt.submit_round(round_id, sub).unwrap();
        }
        assert_eq!(rt.iteration(), 0);
        rt.shutdown();
        // Shutdown settled the half-full round: the two acknowledged
        // submissions were applied (mask compensation recovered their sum).
        assert_eq!(rt.iteration(), 1);
        assert!((rt.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(rt.stats().get("rounds_finalized"), 1);
    }

    #[test]
    fn deadline_expiry_finalizes_survivors_mid_run() {
        // Deadline of 2 epochs; unselected devices' free-run checkins drive
        // the iteration clock past it.
        let mut config = round_config(8, 0.5, 2);
        config = config.with_shard_count(1);
        let rt = runtime(config);
        let info = rt.round_info().unwrap();
        let cohort = crowd_rounds::cohort(info.seed, info.population, info.select_fraction);
        assert!(!cohort.is_empty() && cohort.len() < 8);
        // One cohort member submits; the rest drop out.
        let survivor = cohort[0];
        let (round_id, sub) = masked(&rt, survivor, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        rt.submit_round(round_id, sub).unwrap();
        // Two free-run checkins from a non-member expire the round.
        let free = (0..8).find(|d| !cohort.contains(d)).unwrap();
        for step in 0..2u64 {
            assert!(
                rt.checkin(payload(free, vec![0.0; 6], step))
                    .unwrap()
                    .accepted
            );
        }
        // The expiry epoch applied the lone survivor's unmasked gradient
        // (compensating every dropout's pairwise masks).
        assert_eq!(rt.iteration(), 3);
        assert_eq!(rt.round_info().unwrap().round_id, 2);
        assert_eq!(rt.stats().get("rounds_finalized"), 1);
        rt.shutdown();
    }

    #[test]
    fn mid_round_kill_recovers_pending_and_finalizes_identically() {
        let dir = temp_dir("round-kill");
        let mk = |dir: &std::path::Path| {
            round_config(3, 1.0, 100)
                .with_data_dir(dir)
                .with_snapshot_every(100)
        };
        let gradient = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let (store, server, _) = crowd_store::Store::open(model, mk(&dir)).unwrap();
        let rt = AggRuntime::with_store(server, Some(store)).unwrap();
        for device in 0..2u64 {
            let (round_id, sub) = masked(&rt, device, &gradient);
            rt.submit_round(round_id, sub).unwrap();
        }
        rt.kill();

        // Recovery rebuilds the pending cohort from the WAL; the last member
        // completes it and finalization matches the uninterrupted run.
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let (store, server, report) = crowd_store::Store::open(model, mk(&dir)).unwrap();
        assert_eq!(report.replayed_submissions, 2);
        let rt = AggRuntime::with_store(server, Some(store)).unwrap();
        let (round_id, sub) = masked(&rt, 2, &gradient);
        match rt.submit_round(round_id, sub).unwrap() {
            RoundSubmitOutcome::Acked(outcome) => assert!(outcome.accepted),
            other => panic!("expected ack, got {other:?}"),
        }
        assert_eq!(rt.iteration(), 1);
        assert!((rt.params()[0] + 1.0).abs() < 1e-12);
        rt.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_checkins_from_many_devices() {
        let config = ServerConfig::new().with_shard_count(8);
        let rt = Arc::new(runtime(config));
        let mut threads = Vec::new();
        for device in 0..8u64 {
            let rt = Arc::clone(&rt);
            threads.push(std::thread::spawn(move || {
                for step in 0..10u64 {
                    let outcome = rt.checkin(payload(device, vec![0.01; 6], step)).unwrap();
                    assert!(outcome.accepted);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rt.total_samples(), 160);
        assert_eq!(rt.active_devices(), 8);
        assert_eq!(rt.stats().get("checkins_applied"), 80);
        rt.shutdown();
    }
}
