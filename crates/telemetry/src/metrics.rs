//! The static metric registry and its snapshot/dump surface.
//!
//! Metrics are addressed by compile-time ids ([`CounterId`], [`GaugeId`],
//! [`HistogramId`]) that index fixed atomic arrays, so the request path
//! never hashes a string, takes a lock, or allocates. Names exist only at
//! the snapshot/dump boundary — and the counter names deliberately match
//! the string keys the old `crowd_sim::TraceCollector` exposed, so call
//! sites asserting `stats().get("checkins_applied")` read identically off
//! a [`MetricsSnapshot`].

use crate::clock::{Clock, Tick};
use crate::hist::{Histogram, HistogramBins};
use crate::ring::{EventRing, Stage};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Declares an id enum plus its parallel name table, keeping both in sync.
macro_rules! metric_ids {
    (
        $(#[$enum_meta:meta])*
        $vis:vis enum $Enum:ident {
            $($(#[$var_meta:meta])* $Variant:ident => $name:literal,)+
        }
    ) => {
        $(#[$enum_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        $vis enum $Enum {
            $($(#[$var_meta])* $Variant,)+
        }

        impl $Enum {
            /// Number of ids in this namespace.
            pub const COUNT: usize = [$($name),+].len();
            /// Every id, in declaration order.
            pub const ALL: [$Enum; Self::COUNT] = [$($Enum::$Variant),+];
            /// The id's stable dump name.
            pub fn name(self) -> &'static str {
                const NAMES: [&str; $Enum::COUNT] = [$($name),+];
                NAMES[self as usize]
            }
        }
    };
}

metric_ids! {
    /// Monotonic event counters, one per workspace-wide event of interest.
    pub enum CounterId {
        /// Checkins folded into the model (agg).
        CheckinsApplied => "checkins_applied",
        /// Duplicate checkins answered from the dedup cache (agg).
        DedupReplays => "dedup_replays",
        /// Duplicates refused because the original is still in flight (agg).
        DedupInflightBusy => "dedup_inflight_busy",
        /// Checkins refused for an exhausted ε budget at submit (agg).
        BudgetRejections => "budget_rejections",
        /// Checkins refused with Busy because the ingest queue was full (agg).
        BusyRejections => "busy_rejections",
        /// Epochs merged into the model (agg).
        EpochMerges => "epoch_merges",
        /// Epochs that batched more than one checkin (agg).
        BatchedEpochs => "batched_epochs",
        /// Malformed checkins dropped at ingest (agg).
        IngestErrors => "ingest_errors",
        /// WAL appends that failed, voiding their epoch (agg/store).
        WalErrors => "wal_errors",
        /// Epoch applies the server refused (agg).
        ApplyErrors => "apply_errors",
        /// Snapshots written (agg/store).
        Snapshots => "snapshots",
        /// Snapshot attempts that failed (agg/store).
        SnapshotErrors => "snapshot_errors",
        /// Checkouts answered with a parameter snapshot (net).
        CheckoutsServed => "checkouts_served",
        /// Checkouts refused because the device's ε budget is spent (net/dp).
        ExhaustionRefusals => "exhaustion_refusals",
        /// Connections accepted by the reactor (reactor).
        ConnsAccepted => "conns_accepted",
        /// Connections refused at the admission cap (reactor).
        ConnsRejected => "conns_rejected",
        /// Requests parked on backpressure for in-connection retry (reactor).
        Parks => "parks",
        /// Frames completed after at least one partial read (reactor).
        FrameResumes => "frame_resumes",
        /// Bytes appended to the WAL (store).
        WalAppendBytes => "wal_append_bytes",
        /// WAL append operations (store).
        WalAppends => "wal_appends",
        /// Checkins that arrived with the quantized gradient encoding (net).
        QuantizedCheckins => "quantized_checkins",
        /// Wire bytes saved by quantized versus dense gradient encoding (net).
        QuantizedBytesSaved => "quantized_bytes_saved",
        /// Masked round submissions accepted into a cohort (agg).
        RoundSubmissions => "round_submissions",
        /// Rounds finalized with at least one surviving submission (agg).
        RoundsFinalized => "rounds_finalized",
        /// Rounds that expired with an empty cohort (agg).
        RoundsExpired => "rounds_expired",
        /// Checkins refused because they named a closed round (agg).
        RoundOutdatedRejections => "round_outdated_rejections",
    }
}

metric_ids! {
    /// Instantaneous level gauges.
    pub enum GaugeId {
        /// Checkins admitted to the ingest queue and not yet applied (agg).
        QueueDepth => "queue_depth",
        /// Open connections held by the reactor (reactor).
        ConnsActive => "conns_active",
        /// Connections currently parked on backpressure (reactor).
        ConnsParked => "conns_parked",
        /// Requests being processed by the service right now (reactor).
        Inflight => "inflight",
    }
}

metric_ids! {
    /// Latency / size distributions (log₂ histograms; unit in the name).
    pub enum HistogramId {
        /// Submit→ack latency of an acknowledged checkin (agg, µs).
        CheckinLatencyUs => "checkin_latency_us",
        /// Service time of a CheckoutRequest (net, µs).
        ReqCheckoutUs => "req_checkout_us",
        /// Service time of a CheckinRequest (net, µs).
        ReqCheckinUs => "req_checkin_us",
        /// Service time of a BatchCheckinRequest (net, µs).
        ReqBatchCheckinUs => "req_batch_checkin_us",
        /// Service time of a MetricsRequest scrape (net, µs).
        ReqMetricsUs => "req_metrics_us",
        /// Epoch merge (WAL + apply) latency (agg, µs).
        EpochMergeUs => "epoch_merge_us",
        /// WAL append + fsync latency (store, µs).
        WalAppendUs => "wal_append_us",
        /// Snapshot write duration (store, µs).
        SnapshotUs => "snapshot_us",
        /// ε charged per checkin, in micro-ε (dp).
        EpsSpendMicroeps => "eps_spend_microeps",
        /// Round finalization (unmask + fold + WAL + apply) latency (agg, µs).
        RoundFinalizeUs => "round_finalize_us",
    }
}

/// The shared, workspace-wide metric registry.
///
/// One registry is created per server instance (by the aggregation runtime)
/// and shared by every layer that instruments itself; tests that need
/// reproducible dumps construct one around a logical [`Clock`].
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; CounterId::COUNT],
    gauges: [AtomicI64; GaugeId::COUNT],
    hists: [Histogram; HistogramId::COUNT],
    ring: EventRing,
    clock: Clock,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_clock(Clock::monotonic())
    }
}

impl Registry {
    /// A registry on a monotonic clock (live servers).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry on the given clock (logical for deterministic suites).
    pub fn with_clock(clock: Clock) -> Self {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
            hists: std::array::from_fn(|_| Histogram::new()),
            ring: EventRing::default(),
            clock,
        }
    }

    /// The registry's time source.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Increments a counter by one.
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Adds `delta` (possibly negative) to a gauge.
    pub fn gauge_add(&self, id: GaugeId, delta: i64) {
        self.gauges[id as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&self, id: GaugeId, value: i64) {
        self.gauges[id as usize].store(value, Ordering::Relaxed);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram.
    pub fn observe(&self, id: HistogramId, value: u64) {
        self.hists[id as usize].observe(value);
    }

    /// Starts a latency measurement on the registry's clock.
    pub fn start(&self) -> Tick {
        self.clock.start()
    }

    /// Ends a latency measurement: records the elapsed microseconds since
    /// `start` into the histogram and returns them.
    pub fn observe_since(&self, id: HistogramId, start: Tick) -> u64 {
        let elapsed = self.clock.elapsed_micros(start);
        self.observe(id, elapsed);
        elapsed
    }

    /// Drops a span event into the bounded event ring, stamped by the
    /// registry's clock.
    pub fn span(&self, stage: Stage, key: u64) {
        self.ring.record(stage, key, self.clock.now_micros());
    }

    /// The request-path event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Takes a point-in-time snapshot of every counter, gauge, and
    /// histogram, sorted by metric name. Ring contents are deliberately
    /// excluded (their interleaving is scheduling-dependent).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(&'static str, u64)> = CounterId::ALL
            .iter()
            .map(|&id| (id.name(), self.counter(id)))
            .collect();
        counters.sort_unstable_by_key(|&(name, _)| name);
        let mut gauges: Vec<(&'static str, i64)> = GaugeId::ALL
            .iter()
            .map(|&id| (id.name(), self.gauge(id)))
            .collect();
        gauges.sort_unstable_by_key(|&(name, _)| name);
        let mut hists: Vec<(&'static str, HistogramBins)> = HistogramId::ALL
            .iter()
            .map(|&id| (id.name(), self.hists[id as usize].bins()))
            .collect();
        hists.sort_unstable_by_key(|&(name, _)| name);
        MetricsSnapshot {
            counters,
            gauges,
            hists,
            logical_clock: self.clock.is_logical(),
        }
    }
}

/// A point-in-time view of a [`Registry`]: the one snapshot shape every
/// consumer (tests, `ChaosReport`, the wire scrape, CI smoke greps) reads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, i64)>,
    hists: Vec<(&'static str, HistogramBins)>,
    logical_clock: bool,
}

impl MetricsSnapshot {
    /// Value of the named counter; 0 when unknown (mirrors the old
    /// `TraceCollector::get` contract, so existing assertion sites port
    /// verbatim).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of the named gauge; 0 when unknown.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The named histogram's bins, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramBins> {
        self.hists
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|(_, bins)| bins)
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> &[(&'static str, i64)] {
        &self.gauges
    }

    /// All histograms as `(name, bins)`, sorted by name.
    pub fn histograms(&self) -> &[(&'static str, HistogramBins)] {
        &self.hists
    }

    /// `true` when the registry ran on a logical clock.
    pub fn logical_clock(&self) -> bool {
        self.logical_clock
    }

    /// Deterministic plain-text dump: one sorted line per metric. Identical
    /// registries (identical op sequences on a logical clock) render
    /// byte-identical text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let base = if self.logical_clock {
            "logical"
        } else {
            "monotonic"
        };
        let _ = writeln!(out, "# crowd-scope metrics (time base: {base})");
        for &(name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for &(name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, bins) in &self.hists {
            let _ = writeln!(
                out,
                "hist {name} count={} sum={} max={} p50={} p90={} p99={} p999={}",
                bins.count(),
                bins.sum(),
                bins.max(),
                bins.p50(),
                bins.p90(),
                bins.p99(),
                bins.p999(),
            );
        }
        out
    }

    /// Deterministic JSON dump (sorted keys, integers only).
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let base = if self.logical_clock {
            "logical"
        } else {
            "monotonic"
        };
        let _ = write!(out, "{{\"time_base\":\"{base}\",\"counters\":{{");
        for (i, &(name, value)) in self.counters.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\"{name}\":{value}");
        }
        let _ = write!(out, "}},\"gauges\":{{");
        for (i, &(name, value)) in self.gauges.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\"{name}\":{value}");
        }
        let _ = write!(out, "}},\"histograms\":{{");
        for (i, (name, bins)) in self.hists.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(
                out,
                "{comma}\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                bins.count(),
                bins.sum(),
                bins.max(),
                bins.p50(),
                bins.p90(),
                bins.p99(),
                bins.p999(),
            );
        }
        let _ = write!(out, "}}}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_read_back_by_id_and_name() {
        let reg = Registry::new();
        reg.incr(CounterId::CheckinsApplied);
        reg.add(CounterId::CheckinsApplied, 2);
        reg.incr(CounterId::DedupReplays);
        assert_eq!(reg.counter(CounterId::CheckinsApplied), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("checkins_applied"), 3);
        assert_eq!(snap.get("dedup_replays"), 1);
        assert_eq!(snap.get("no_such_counter"), 0);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = Registry::new();
        reg.gauge_add(GaugeId::QueueDepth, 5);
        reg.gauge_add(GaugeId::QueueDepth, -2);
        assert_eq!(reg.gauge(GaugeId::QueueDepth), 3);
        reg.gauge_set(GaugeId::ConnsActive, 41);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("queue_depth"), 3);
        assert_eq!(snap.gauge("conns_active"), 41);
    }

    #[test]
    fn histograms_flow_through_snapshots() {
        let reg = Registry::new();
        for v in [1u64, 2, 3, 100] {
            reg.observe(HistogramId::CheckinLatencyUs, v);
        }
        let snap = reg.snapshot();
        let bins = snap.histogram("checkin_latency_us").unwrap();
        assert_eq!(bins.count(), 4);
        assert_eq!(bins.max(), 100);
        assert!(snap.histogram("nope").is_none());
    }

    #[test]
    fn observe_since_uses_the_registry_clock() {
        let reg = Registry::with_clock(Clock::logical());
        let start = reg.start();
        reg.clock().advance(40);
        let elapsed = reg.observe_since(HistogramId::ReqCheckinUs, start);
        assert_eq!(elapsed, 40);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("req_checkin_us").unwrap().count(), 1);
        assert!(snap.logical_clock());
    }

    #[test]
    fn dumps_are_sorted_and_carry_every_metric() {
        let snap = Registry::new().snapshot();
        let text = snap.render_text();
        for id in CounterId::ALL {
            assert!(text.contains(&format!("counter {} ", id.name())));
        }
        for id in GaugeId::ALL {
            assert!(text.contains(&format!("gauge {} ", id.name())));
        }
        for id in HistogramId::ALL {
            assert!(text.contains(&format!("hist {} ", id.name())));
        }
        // Sorted within each section.
        let counter_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("counter ")).collect();
        let mut sorted = counter_lines.clone();
        sorted.sort_unstable();
        assert_eq!(counter_lines, sorted);
        // JSON is well-formed enough for the bench/CI consumers.
        let json = snap.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"checkins_applied\":0"));
    }

    #[test]
    fn names_are_unique_across_each_namespace() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::COUNT);
        let mut names: Vec<&str> = HistogramId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HistogramId::COUNT);
    }

    #[test]
    fn span_events_land_in_the_ring_but_not_the_dump() {
        let reg = Registry::with_clock(Clock::logical());
        reg.span(Stage::ShardIngest, 7);
        reg.clock().advance(3);
        reg.span(Stage::Ack, 7);
        let events = reg.ring().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::ShardIngest);
        assert_eq!(events[1].at_micros, 3);
        assert!(!reg.snapshot().render_text().contains("shard_ingest"));
    }
}
