//! Bounded, striped ring of structured span events for request-path tracing.
//!
//! Every interesting hop of a checkin's life — accept → frame decode → queue
//! admit/park → shard ingest → epoch merge → WAL append → ack — can drop a
//! seq-numbered [`SpanEvent`] into the [`EventRing`]. The ring is **bounded**
//! (a fixed number of slots per stripe; old events are overwritten), so it
//! never grows under a week-long chaos run, and **striped** (events hash to
//! one of several small mutex-protected rings by their key) so concurrent
//! recorders rarely contend.
//!
//! Ring contents are diagnostic, not part of the deterministic metric dump:
//! interleaving across stripes depends on scheduling, so scrapes exclude
//! them while tests and operators can read them via [`EventRing::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Stripes in the ring; keys hash to a stripe, bounding lock contention.
const STRIPES: usize = 8;

/// Default number of slots per stripe (total capacity = 8 × 256).
pub const DEFAULT_SLOTS_PER_STRIPE: usize = 256;

/// A stage of the request path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Connection accepted by a server.
    Accept,
    /// A complete frame was decoded off a connection.
    FrameDecode,
    /// A checkin was admitted to the ingest queue.
    QueueAdmit,
    /// A checkin was parked (queue full / dedup in flight).
    QueuePark,
    /// A shard folded the checkin's gradient.
    ShardIngest,
    /// An epoch was merged into the model.
    EpochMerge,
    /// An epoch record was appended to the WAL.
    WalAppend,
    /// A checkin acknowledgement was released.
    Ack,
}

impl Stage {
    /// Stable lowercase name for dumps and assertions.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::FrameDecode => "frame_decode",
            Stage::QueueAdmit => "queue_admit",
            Stage::QueuePark => "queue_park",
            Stage::ShardIngest => "shard_ingest",
            Stage::EpochMerge => "epoch_merge",
            Stage::WalAppend => "wal_append",
            Stage::Ack => "ack",
        }
    }
}

/// One recorded hop: globally seq-numbered, stamped by the registry's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Which pipeline stage recorded the event.
    pub stage: Stage,
    /// Correlation key: device id, connection id — whatever the stage knows.
    pub key: u64,
    /// Timestamp in clock microseconds (logical ticks under sim clocks).
    pub at_micros: u64,
}

struct Stripe {
    slots: Vec<SpanEvent>,
    /// Index of the oldest slot (the next to overwrite) once full.
    next: usize,
}

/// The bounded striped event ring. See the module docs.
#[derive(Debug)]
pub struct EventRing {
    seq: AtomicU64,
    slots_per_stripe: usize,
    // audit:lock(telemetry.ring, 85)
    stripes: [Mutex<Stripe>; STRIPES],
}

impl std::fmt::Debug for Stripe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stripe")
            .field("len", &self.slots.len())
            .field("next", &self.next)
            .finish()
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_slots(DEFAULT_SLOTS_PER_STRIPE)
    }
}

impl EventRing {
    /// Creates a ring with `slots_per_stripe` slots in each of its stripes.
    /// All slot storage is allocated up front so recording never allocates.
    pub fn with_slots(slots_per_stripe: usize) -> Self {
        let slots_per_stripe = slots_per_stripe.max(1);
        EventRing {
            seq: AtomicU64::new(0),
            slots_per_stripe,
            stripes: std::array::from_fn(|_| {
                Mutex::new(Stripe {
                    slots: Vec::with_capacity(slots_per_stripe),
                    next: 0,
                })
            }),
        }
    }

    /// Records one span event, overwriting the stripe's oldest slot when
    /// full. Allocation-free: the slot storage was reserved at construction.
    pub fn record(&self, stage: Stage, key: u64, at_micros: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = SpanEvent {
            seq,
            stage,
            key,
            at_micros,
        };
        // Multiplicative hash spreads sequential device/connection ids.
        let stripe = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % STRIPES;
        let mut guard = self.stripes[stripe]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.slots.len() < self.slots_per_stripe {
            guard.slots.push(event);
        } else {
            let next = guard.next;
            guard.slots[next] = event;
            guard.next = (next + 1) % self.slots_per_stripe;
        }
    }

    /// Upper bound on surviving events: total slots across every stripe.
    pub fn capacity(&self) -> usize {
        STRIPES * self.slots_per_stripe
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The surviving events across all stripes, in sequence order.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut events = Vec::new();
        for stripe in &self.stripes {
            let guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend_from_slice(&guard.slots);
        }
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_sequence_and_bounds_memory() {
        let ring = EventRing::with_slots(4);
        // 100 events from 16 keys: every stripe overflows, memory stays at
        // 8 stripes × 4 slots.
        for i in 0..100u64 {
            ring.record(Stage::Ack, i % 16, i);
        }
        assert_eq!(ring.recorded(), 100);
        let events = ring.snapshot();
        assert!(events.len() <= STRIPES * 4);
        // Sequence numbers are strictly increasing in the snapshot.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn stage_names_cover_the_pipeline() {
        let stages = [
            Stage::Accept,
            Stage::FrameDecode,
            Stage::QueueAdmit,
            Stage::QueuePark,
            Stage::ShardIngest,
            Stage::EpochMerge,
            Stage::WalAppend,
            Stage::Ack,
        ];
        let names: std::collections::BTreeSet<&str> = stages.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), stages.len());
    }
}
