//! crowd-scope: the workspace-wide observability subsystem.
//!
//! The paper's scalability story (§IV-B) is argued in terms of latency
//! distributions, queue pressure, and refusal rates; this crate is the
//! instrument the rest of the workspace reports those quantities with. Three
//! design constraints shape everything here:
//!
//! 1. **Allocation-free on the hot path.** Counters and gauges are plain
//!    atomics in fixed arrays addressed by compile-time metric ids
//!    ([`CounterId`], [`GaugeId`], [`HistogramId`]); histograms use fixed
//!    log₂ buckets with atomic counts. Recording never hashes a string,
//!    takes a lock, or allocates — asserted by a counting-allocator test.
//! 2. **Deterministic under test.** All time flows through the [`Clock`]
//!    abstraction: live servers use a monotonic clock (the *only* wall-clock
//!    read in the crate lives in `clock.rs`, the audit `wallclock`
//!    allowlist's sole telemetry entry), while sim and determinism suites use
//!    logical ticks, so two identical seeded runs render byte-identical
//!    metric dumps.
//! 3. **One snapshot shape.** Every layer (agg, net, reactor, store, dp)
//!    records into one shared [`Registry`]; scrapes, tests, and reports all
//!    read the same [`MetricsSnapshot`].
//!
//! The request path is additionally traced by a bounded, striped
//! [`EventRing`] of seq-numbered [`SpanEvent`]s (accept → frame decode →
//! queue admit/park → shard ingest → epoch merge → WAL append → ack), which
//! is diagnostic state: it is excluded from the deterministic dump.

#![forbid(unsafe_code)]

pub mod clock;
pub mod hist;
pub mod metrics;
pub mod ring;

pub use clock::{Clock, Tick};
pub use hist::{Histogram, HistogramBins};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsSnapshot, Registry};
pub use ring::{EventRing, SpanEvent, Stage};
