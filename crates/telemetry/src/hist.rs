//! Fixed-bucket log₂ histograms with atomic counts.
//!
//! A [`Histogram`] is 65 atomic buckets — bucket 0 holds the value 0, bucket
//! *i* ≥ 1 holds values in `[2^(i-1), 2^i - 1]` — plus exact count/sum/max
//! aggregates. Recording is a handful of relaxed atomic adds: no locks, no
//! allocation, no floating point, so it is safe on the request hot path and
//! deterministic to render.
//!
//! Percentiles come from the immutable [`HistogramBins`] snapshot and are
//! computed with integer bucket-upper-bound math: the reported quantile is
//! the inclusive upper bound of the bucket containing the rank, so for any
//! recorded value distribution `exact_quantile ≤ reported < 2 ×
//! max(exact_quantile, 1)` — a guaranteed ≤2× overestimate, never an
//! underestimate (the property the proptest suite pins down).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one zero bucket plus one per power of two up to `2^63`.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket holding `value`: 0 for 0, else `floor(log2 v) + 1`.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (the value percentiles report).
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A concurrent log₂ histogram; record with [`Histogram::observe`], read via
/// [`Histogram::bins`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Lock-free and allocation-free.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot of the current contents.
    ///
    /// Concurrent observers may land between the individual bucket reads;
    /// the snapshot is exact once writers are quiescent (which is when
    /// dumps, tests, and the scrape surface read it).
    pub fn bins(&self) -> HistogramBins {
        HistogramBins {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot: cloneable, mergeable, and the thing
/// percentiles are computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramBins {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramBins {
    fn default() -> Self {
        HistogramBins {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramBins {
    /// Creates an empty snapshot (useful as a merge accumulator).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation into the (non-atomic) snapshot; the
    /// single-threaded counterpart of [`Histogram::observe`] used by
    /// [`crate::metrics::MetricsSnapshot`]-adjacent collectors like the sim
    /// trace.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not a bucket bound); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]` as the inclusive upper bound of the
    /// bucket containing that rank (deterministic integer math; the exact
    /// max for the top-most occupied bucket would be available via
    /// [`HistogramBins::max`]). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-quantile, 1-based, at least 1 ("nearest rank").
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        // Unreachable while count equals the bucket total; fall back to max.
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket upper bound).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramBins) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 5, 9, 17, 100, 1000] {
            h.observe(v);
        }
        let bins = h.bins();
        assert_eq!(bins.count(), 9);
        assert_eq!(bins.max(), 1000);
        // Rank 5 of 9 (p50) is the value 5 → bucket [4,7] → bound 7.
        assert_eq!(bins.p50(), 7);
        // p99 lands in the top bucket [512,1023].
        assert_eq!(bins.p99(), 1023);
        assert_eq!(bins.quantile(0.0), 0);
        assert_eq!(bins.quantile(1.0), 1023);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let bins = Histogram::new().bins();
        assert_eq!(bins.count(), 0);
        assert_eq!(bins.mean(), 0.0);
        assert_eq!(bins.p999(), 0);
        assert_eq!(bins.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HistogramBins::new();
        a.record(10);
        let mut b = HistogramBins::new();
        b.record(1000);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1013);
        assert_eq!(a.max(), 1000);
    }
}
