//! The clock abstraction every telemetry timestamp flows through.
//!
//! This module is the **only** place in the crate (and, by policy, the only
//! non-bench place in the workspace) that reads the wall clock; the audit
//! `wallclock` rule allowlists exactly this file. Everything downstream —
//! histograms, span events, latency tokens — sees time as opaque
//! microsecond counts from a [`Clock`], which comes in two flavors:
//!
//! * [`Clock::monotonic`] — live servers. Microseconds elapsed since the
//!   clock was created, read from [`Instant`].
//! * [`Clock::logical`] — sim and determinism suites. A shared atomic tick
//!   counter advanced explicitly by the harness via [`Clock::advance`];
//!   never advances on its own, so identical seeded runs observe identical
//!   durations (zero, unless the harness ticks) and render byte-identical
//!   metric dumps.
//!
//! Clones share the underlying time source: a cloned logical clock sees the
//! same ticks, a cloned monotonic clock keeps the same epoch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An opaque start token from [`Clock::start`]; redeem it with
/// [`Clock::elapsed_micros`]. Copyable so it can ride through queues and
/// pending-ack slots without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick(u64);

#[derive(Debug, Clone)]
enum Inner {
    /// Epoch from which elapsed microseconds are measured.
    Monotonic(Instant),
    /// Harness-driven tick counter, in "microseconds".
    Logical(Arc<AtomicU64>),
}

/// A cloneable time source: monotonic in live servers, logical in tests.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Inner,
}

impl Clock {
    /// A monotonic clock anchored at its creation instant.
    pub fn monotonic() -> Self {
        Clock {
            inner: Inner::Monotonic(Instant::now()),
        }
    }

    /// A logical clock starting at tick zero. It only moves when
    /// [`Clock::advance`] is called, which is what makes metric dumps
    /// reproducible in deterministic suites.
    pub fn logical() -> Self {
        Clock {
            inner: Inner::Logical(Arc::new(AtomicU64::new(0))),
        }
    }

    /// `true` for logical clocks (used by dumps to label the time base).
    pub fn is_logical(&self) -> bool {
        matches!(self.inner, Inner::Logical(_))
    }

    /// Current time in microseconds since the clock's epoch.
    pub fn now_micros(&self) -> u64 {
        match &self.inner {
            Inner::Monotonic(epoch) => {
                // Saturate rather than wrap: u64 microseconds is ~584k years.
                u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
            }
            Inner::Logical(ticks) => ticks.load(Ordering::Relaxed),
        }
    }

    /// Starts a latency measurement.
    pub fn start(&self) -> Tick {
        Tick(self.now_micros())
    }

    /// Microseconds elapsed since `start` (saturating at zero).
    pub fn elapsed_micros(&self, start: Tick) -> u64 {
        self.now_micros().saturating_sub(start.0)
    }

    /// Advances a logical clock by `micros` ticks; no-op on monotonic clocks.
    pub fn advance(&self, micros: u64) {
        if let Inner::Logical(ticks) = &self.inner {
            ticks.fetch_add(micros, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_only_moves_when_advanced() {
        let clock = Clock::logical();
        assert!(clock.is_logical());
        let start = clock.start();
        assert_eq!(clock.elapsed_micros(start), 0);
        clock.advance(250);
        assert_eq!(clock.elapsed_micros(start), 250);
        // Clones share the tick counter.
        let twin = clock.clone();
        twin.advance(50);
        assert_eq!(clock.now_micros(), 300);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = Clock::monotonic();
        assert!(!clock.is_logical());
        let start = clock.start();
        let a = clock.elapsed_micros(start);
        let b = clock.elapsed_micros(start);
        assert!(b >= a);
        // advance is a no-op (the wall clock cannot be steered).
        clock.advance(1_000_000_000);
        assert!(clock.now_micros() < 1_000_000_000);
    }
}
