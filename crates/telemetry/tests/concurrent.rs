//! Concurrency tests: counters, gauges, and histograms lose no updates under
//! contended multi-threaded recording.

use crowd_telemetry::{CounterId, GaugeId, HistogramId, Registry};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn contended_counters_lose_no_increments() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    reg.incr(CounterId::CheckinsApplied);
                    reg.add(CounterId::WalAppendBytes, 3);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        reg.counter(CounterId::CheckinsApplied),
        THREADS as u64 * OPS
    );
    assert_eq!(
        reg.counter(CounterId::WalAppendBytes),
        THREADS as u64 * OPS * 3
    );
}

#[test]
fn contended_gauges_balance_to_zero() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    reg.gauge_add(GaugeId::QueueDepth, 1);
                    reg.gauge_add(GaugeId::QueueDepth, -1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.gauge(GaugeId::QueueDepth), 0);
}

#[test]
fn contended_histograms_keep_exact_count_and_sum() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    // Spread observations across buckets deterministically.
                    reg.observe(HistogramId::CheckinLatencyUs, (t as u64 + 1) * (i % 1024));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    let bins = snap.histogram("checkin_latency_us").unwrap();
    assert_eq!(bins.count(), THREADS as u64 * OPS);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..OPS).map(|i| (t + 1) * (i % 1024)).sum::<u64>())
        .sum();
    assert_eq!(bins.sum(), expected_sum);
    // The per-thread maximum is (t+1) * 1023.
    assert_eq!(bins.max(), THREADS as u64 * 1023);
}

#[test]
fn concurrent_span_recording_is_panic_free_and_bounded() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    reg.span(crowd_telemetry::Stage::ShardIngest, t as u64 * OPS + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // The ring overwrites its oldest entries instead of growing: whatever
    // survives is at most the ring's fixed capacity.
    let events = reg.ring().snapshot();
    assert!(!events.is_empty());
    assert!(events.len() <= reg.ring().capacity());
    assert_eq!(reg.ring().recorded(), THREADS as u64 * OPS);
}
