//! Proof that the instrumented hot path allocates nothing.
//!
//! A counting global allocator wraps the system allocator; every registry
//! operation a request touches (counter incr, gauge move, histogram observe,
//! tick start/stop, span record) runs under the counter and must leave it
//! unchanged. Snapshots and dumps are explicitly *allowed* to allocate —
//! they run off the request path — and the test pins that asymmetry.
//!
//! Lives in an integration test because the library itself is
//! `#![forbid(unsafe_code)]`; the `GlobalAlloc` impl needs `unsafe`.

use crowd_telemetry::{Clock, CounterId, GaugeId, HistogramId, Registry, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

#[test]
fn instrumented_checkin_hot_path_allocates_nothing() {
    // Construction allocates (ring slots are reserved up front) — done here,
    // outside the measured window, exactly as a server does at startup.
    let reg = Registry::with_clock(Clock::logical());

    let (allocs, _) = allocations_during(|| {
        for device in 0..1000u64 {
            // The full per-checkin instrumentation sequence, in hot-path
            // order: admit, ingest, merge, ack.
            let start = reg.start();
            reg.incr(CounterId::CheckinsApplied);
            reg.add(CounterId::WalAppendBytes, 128);
            reg.gauge_add(GaugeId::QueueDepth, 1);
            reg.span(Stage::QueueAdmit, device);
            reg.gauge_add(GaugeId::QueueDepth, -1);
            reg.span(Stage::ShardIngest, device);
            reg.observe(HistogramId::EpochMergeUs, 37);
            reg.clock().advance(5);
            reg.observe_since(HistogramId::CheckinLatencyUs, start);
            reg.span(Stage::Ack, device);
        }
    });
    assert_eq!(
        allocs, 0,
        "request-path metric ops must not touch the allocator"
    );
}

#[test]
fn snapshot_and_render_may_allocate_off_the_hot_path() {
    let reg = Registry::new();
    reg.incr(CounterId::CheckinsApplied);
    let (allocs, text) = allocations_during(|| reg.snapshot().render_text());
    // Sanity check the asymmetry: the scrape boundary is where allocation is
    // allowed to happen, and it demonstrably does.
    assert!(allocs > 0);
    assert!(text.contains("counter checkins_applied 1"));
}
