//! Property tests pinning the histogram percentile contract: the reported
//! quantile is the log₂-bucket upper bound, so it never *under*-estimates the
//! exact nearest-rank quantile and over-estimates by strictly less than 2×.

use crowd_telemetry::{Histogram, HistogramBins};
use proptest::prelude::*;

/// Exact nearest-rank quantile over the raw values (the reference the
/// bucketed answer is checked against).
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn reported_quantile_bounds_the_exact_one(
        values in prop::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.observe(v);
        }
        let bins = hist.bins();
        let reported = bins.quantile(q);
        let exact = exact_quantile(&values, q);
        // Never an underestimate…
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        // …and at most the containing bucket's upper bound: 0 stays 0, and a
        // value v ≥ 1 in bucket [2^(i-1), 2^i - 1] reports at most 2v - 1
        // (saturated: the top bucket's bound is u64::MAX ≤ 2v saturated).
        if exact == 0 {
            prop_assert_eq!(reported, 0);
        } else {
            prop_assert!(
                reported <= exact.saturating_mul(2),
                "reported {} breaks the 2x bound on exact {}", reported, exact
            );
        }
    }

    #[test]
    fn count_sum_max_are_exact(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let hist = Histogram::new();
        for &v in &values {
            hist.observe(v);
        }
        let bins = hist.bins();
        prop_assert_eq!(bins.count(), values.len() as u64);
        // The atomic sum wraps on overflow (fetch_add), so mirror that here;
        // realistic microsecond magnitudes never get close.
        let sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(bins.sum(), sum);
        prop_assert_eq!(bins.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn merge_equals_recording_into_one(
        a in prop::collection::vec(any::<u64>(), 0..60),
        b in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let mut left = HistogramBins::new();
        for &v in &a {
            left.record(v);
        }
        let mut right = HistogramBins::new();
        for &v in &b {
            right.record(v);
        }
        left.merge(&right);
        let mut combined = HistogramBins::new();
        for &v in a.iter().chain(b.iter()) {
            combined.record(v);
        }
        prop_assert_eq!(left, combined);
    }

    #[test]
    fn p50_p999_are_monotone(values in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut bins = HistogramBins::new();
        for &v in &values {
            bins.record(v);
        }
        prop_assert!(bins.p50() <= bins.p90());
        prop_assert!(bins.p90() <= bins.p99());
        prop_assert!(bins.p99() <= bins.p999());
        prop_assert!(bins.p999() <= bins.max().max(bins.p999()));
    }
}
