//! Deterministic chaos driver: a real TCP cluster run under a seeded
//! [`FaultPlan`].
//!
//! The driver steps a fleet of devices round-robin from ONE thread against a
//! live [`NetServer`]: each device observes its next sample and, when its
//! minibatch fills, checks out, computes, and checks in — retrying through
//! whatever the fault shim injects until the checkin is acknowledged. The
//! sequential schedule is the determinism anchor: checkins are applied in
//! program order, so two runs that apply every checkin exactly once produce
//! bitwise-identical servers. Transport faults (drops, delays, duplicates,
//! truncations) therefore must not change a single bit of the final
//! parameters — retries plus the checkin dedup nonce make every logical
//! checkin apply exactly once, and `tests/chaos.rs` asserts the bitwise match
//! against a fault-free reference run of the same seed.
//!
//! Churn (late joiners, retirements, stragglers) and scripted server
//! crash/restart points intentionally change *which* checkins happen, so
//! those runs are held to the weaker standing invariants instead: the run
//! terminates, and the ε ledger charges exactly one per-checkin ε per
//! acknowledged checkin — never more (no over-charging through duplicates,
//! retries, or crash recovery).

use crate::client::{CheckinOutcome, DeviceClient, RetryPolicy, RoundSession};
use crate::reactor_server::{ReactorServer, ReactorServerHandle};
use crate::server::{NetServer, NetServerHandle};
use crate::{NetError, Result};
use crowd_core::config::{DeviceConfig, PrivacyConfig, RoundSettings, ServerConfig};
use crowd_core::device::{CheckinPayload, Device, DeviceAction};
use crowd_data::{Dataset, Sample};
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use crowd_proto::auth::{AuthToken, TokenRegistry};
use crowd_proto::message::ErrorCode;
use crowd_rounds::Role;
use crowd_sim::chaos::FaultPlan;
use crowd_store::RecoveryReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Cap on recorded trace lines, so a pathological run cannot balloon memory.
const MAX_TRACE_LINES: usize = 10_000;

/// Which server implementation a harness drives. Both speak the identical
/// wire protocol through the shared `ServerCore`, so every chaos/determinism
/// suite can run unchanged against either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// Thread-per-connection [`NetServer`].
    Threaded,
    /// Event-driven [`ReactorServer`] (fixed reactor thread pool).
    Reactor,
}

impl ServerKind {
    /// Reads the `CROWD_SERVER` environment toggle: `"reactor"` (any case)
    /// selects the reactor server, anything else — including unset — the
    /// threaded one. CI uses this to re-run the chaos suite against the
    /// reactor without touching the tests.
    pub fn from_env() -> ServerKind {
        match std::env::var("CROWD_SERVER") {
            Ok(v) if v.eq_ignore_ascii_case("reactor") => ServerKind::Reactor,
            _ => ServerKind::Threaded,
        }
    }

    /// Starts a server of this kind; same contract as [`NetServer::start`].
    pub fn start(
        self,
        model: MulticlassLogistic,
        config: ServerConfig,
        tokens: TokenRegistry,
    ) -> Result<AnyServerHandle> {
        match self {
            ServerKind::Threaded => {
                NetServer::start(model, config, tokens).map(AnyServerHandle::Threaded)
            }
            ServerKind::Reactor => {
                ReactorServer::start(model, config, tokens).map(AnyServerHandle::Reactor)
            }
        }
    }
}

/// A server handle abstracted over [`ServerKind`], delegating the full
/// observation/shutdown surface shared by [`NetServerHandle`] and
/// [`ReactorServerHandle`].
pub enum AnyServerHandle {
    /// Handle to a threaded server.
    Threaded(NetServerHandle),
    /// Handle to a reactor server.
    Reactor(ReactorServerHandle),
}

macro_rules! delegate {
    ($self:ident, $h:ident => $body:expr) => {
        match $self {
            AnyServerHandle::Threaded($h) => $body,
            AnyServerHandle::Reactor($h) => $body,
        }
    };
}

impl AnyServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        delegate!(self, h => h.addr())
    }

    /// Current server iteration (number of applied epochs).
    pub fn iteration(&self) -> u64 {
        delegate!(self, h => h.iteration())
    }

    /// A copy of the current parameters.
    pub fn params(&self) -> Vector {
        delegate!(self, h => h.params())
    }

    /// Whether the stopping criterion has been met.
    pub fn stopped(&self) -> bool {
        delegate!(self, h => h.stopped())
    }

    /// The total number of samples reported by devices.
    pub fn total_samples(&self) -> u64 {
        delegate!(self, h => h.total_samples())
    }

    /// The privately estimated error rate, if any samples were reported.
    pub fn error_estimate(&self) -> Option<f64> {
        delegate!(self, h => h.error_estimate())
    }

    /// A snapshot of the aggregation-runtime counters.
    pub fn runtime_stats(&self) -> crowd_telemetry::MetricsSnapshot {
        delegate!(self, h => h.runtime_stats())
    }

    /// What the recovery path found at bind time.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        delegate!(self, h => h.recovery_report())
    }

    /// The per-device ε ledger, ascending by device id.
    pub fn budget_ledger(&self) -> Vec<(u64, f64)> {
        delegate!(self, h => h.budget_ledger())
    }

    /// `true` when the device has spent its entire privacy budget.
    pub fn budget_exhausted(&self, device_id: u64) -> bool {
        delegate!(self, h => h.budget_exhausted(device_id))
    }

    /// Settles the open cohort round without stopping the server, so the
    /// ledger can be read consistently mid-run.
    pub fn settle_rounds(&self) {
        delegate!(self, h => h.settle_rounds())
    }

    /// Gracefully stops the server.
    pub fn shutdown(self) {
        delegate!(self, h => h.shutdown())
    }

    /// Crash-stops the server (simulated SIGKILL; see the per-kind docs).
    pub fn kill(self) {
        delegate!(self, h => h.kill())
    }
}

/// Configuration of one chaos run: the workload plus the fault plan.
#[derive(Debug, Clone)]
pub struct ChaosCluster {
    /// The seeded fault schedule driving transport faults, churn, and crashes.
    pub plan: FaultPlan,
    /// Fleet size.
    pub devices: usize,
    /// Samples each device observes (its local stream length).
    pub samples_per_device: usize,
    /// Device minibatch size `b`.
    pub minibatch: usize,
    /// ε charged per checkin on the server's ledger (tracking only — the
    /// ceiling stays infinite so no device is refused mid-run).
    pub per_checkin_epsilon: f64,
    /// Feature dimension of the synthetic task.
    pub dim: usize,
    /// Class count of the synthetic task.
    pub classes: usize,
    /// Base server configuration (schedule, agg knobs); budget and persistence
    /// are layered on top by the driver.
    pub server: ServerConfig,
    /// Cohort-round settings; `Some` runs the server in rounds mode (wire
    /// v6): selected devices submit masked shares through [`RoundSession`],
    /// unselected devices free-run, and the churn schedule's scripted
    /// mid-round dropouts simply never submit.
    pub rounds: Option<RoundSettings>,
    /// Data directory for a durable server. Required when the plan scripts
    /// crashes; `None` runs volatile.
    pub data_dir: Option<PathBuf>,
    /// Shared secret for device auth tokens.
    pub auth_secret: u64,
    /// Which server implementation to run; read from the `CROWD_SERVER`
    /// environment variable at construction.
    pub server_kind: ServerKind,
}

/// What a chaos run left behind: final server state plus the counters the
/// invariants are checked against.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Final global parameters.
    pub params: Vector,
    /// Applied server iterations.
    pub iterations: u64,
    /// Per-device cumulative ε spend, ascending by device id.
    pub ledger: Vec<(u64, f64)>,
    /// Total samples the server saw.
    pub total_samples: u64,
    /// Acknowledged checkins per device (each logical checkin counted once,
    /// however many wire attempts it took).
    pub acked_checkins: Vec<u64>,
    /// Scripted server crash/restart cycles performed.
    pub restarts: u64,
    /// Devices that joined after round 0.
    pub late_joins: u64,
    /// Devices that retired before exhausting their stream.
    pub retired: u64,
    /// Duplicate checkins the server answered from its dedup table, summed
    /// across server incarnations.
    pub dedup_replays: u64,
    /// Scripted mid-round cohort dropouts performed (minibatches a selected
    /// device discarded instead of submitting). Zero outside rounds mode.
    pub round_dropouts: u64,
    /// The final server incarnation's full crowd-scope metric snapshot
    /// (counters, gauges, histograms) — what a wire scrape of that server
    /// would have reported at the end of the run.
    pub metrics: crowd_telemetry::MetricsSnapshot,
    /// Event log: one line per notable event, for the failure artifact.
    pub trace: Vec<String>,
}

impl ChaosReport {
    /// Total acknowledged checkins across the fleet.
    pub fn acked_total(&self) -> u64 {
        self.acked_checkins.iter().sum()
    }

    /// Total ε charged across the fleet.
    pub fn ledger_total(&self) -> f64 {
        self.ledger.iter().map(|&(_, eps)| eps).sum()
    }
}

struct Driver {
    opts: ChaosCluster,
    trace: Vec<String>,
}

impl ChaosCluster {
    /// A small default workload under the given plan: 4 devices × 24 samples,
    /// minibatch 3, per-checkin ε 0.25.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosCluster {
            plan,
            devices: 4,
            samples_per_device: 24,
            minibatch: 3,
            per_checkin_epsilon: 0.25,
            dim: 4,
            classes: 3,
            server: ServerConfig::new().with_rate_constant(1.0),
            rounds: None,
            data_dir: None,
            auth_secret: 0xC4A05,
            server_kind: ServerKind::from_env(),
        }
    }

    /// Enables cohort rounds over the cluster's own fleet: every device is in
    /// the population, half are selected per round, and the deadline is tuned
    /// short enough that dropped-out cohorts still expire within a run.
    pub fn with_rounds(mut self) -> Self {
        self.rounds = Some(RoundSettings::new(self.devices as u64).with_deadline_epochs(4));
        self
    }

    /// Runs the cluster under the plan. Deterministic given the plan and the
    /// workload knobs (modulo retry *counts*, which may vary with scheduling;
    /// the applied checkin sequence never does).
    pub fn run(&self) -> Result<ChaosReport> {
        if self.plan.crash.is_some() && self.data_dir.is_none() {
            return Err(NetError::Io(std::io::Error::other(
                "a crash plan requires a durable server (set data_dir)",
            )));
        }
        Driver {
            opts: self.clone(),
            trace: Vec::new(),
        }
        .run()
    }
}

impl Driver {
    fn log(&mut self, line: String) {
        if self.trace.len() < MAX_TRACE_LINES {
            self.trace.push(line);
        }
    }

    fn server_config(&self) -> ServerConfig {
        let mut config = self
            .opts
            .server
            .clone()
            .with_budget(self.opts.per_checkin_epsilon, f64::INFINITY);
        if let Some(rounds) = self.opts.rounds {
            config = config.with_rounds(rounds);
        }
        if let Some(dir) = &self.opts.data_dir {
            config = config.with_data_dir(dir).with_snapshot_every(3);
        }
        config
    }

    fn start_server(&self) -> Result<AnyServerHandle> {
        let model = MulticlassLogistic::new(self.opts.dim, self.opts.classes)?;
        let tokens =
            TokenRegistry::with_derived_tokens(self.opts.devices as u64, self.opts.auth_secret);
        self.opts
            .server_kind
            .start(model, self.server_config(), tokens)
    }

    /// Per-device local data stream, derived from the seed alone (never from
    /// the fault schedule), so every plan over one seed sees identical data.
    fn device_stream(&self, device_id: u64) -> Result<Vec<Sample>> {
        let mut rng = StdRng::seed_from_u64(self.opts.plan.seed ^ (device_id << 20) ^ 0xDA7A);
        let (train, _test) =
            crowd_data::synthetic::GaussianMixtureSpec::new(self.opts.dim, self.opts.classes)
                .with_train_size(self.opts.samples_per_device)
                .with_test_size(1)
                .generate(&mut rng)
                .map_err(crowd_core::CoreError::from)?;
        collect_samples(&train)
    }

    fn run(mut self) -> Result<ChaosReport> {
        let opts = self.opts.clone();
        self.log(opts.plan.describe());
        self.log(format!("server kind: {:?}", opts.server_kind));
        let mut handle = self.start_server()?;
        let model = MulticlassLogistic::new(opts.dim, opts.classes)?;
        let faults = Arc::new(opts.plan.transport);
        // Generous retry policy: under a ≤30% per-exchange fault rate, 40
        // attempts make an unabsorbed fault astronomically unlikely, while
        // the driver's outer loop still tolerates the residual.
        let retry = RetryPolicy {
            max_attempts: 40,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        let mut clients: Vec<DeviceClient> = (0..opts.devices as u64)
            .map(|d| {
                DeviceClient::builder(handle.addr(), d, AuthToken::derive(d, opts.auth_secret))
                    .retry(retry)
                    .transport_faults(Arc::clone(&faults))
                    .build()
            })
            .collect();
        let mut devices: Vec<Device> = (0..opts.devices as u64)
            .map(|d| {
                Device::new(
                    d,
                    DeviceConfig::new(opts.minibatch),
                    PrivacyConfig::non_private(),
                )
            })
            .collect::<crowd_core::Result<_>>()?;
        let mut rngs: Vec<StdRng> = (0..opts.devices as u64)
            .map(|d| StdRng::seed_from_u64(opts.plan.seed.wrapping_add(d)))
            .collect();
        let streams: Vec<Vec<Sample>> = (0..opts.devices as u64)
            .map(|d| self.device_stream(d))
            .collect::<Result<_>>()?;
        let mut cursors = vec![0usize; opts.devices];
        let mut acked = vec![0u64; opts.devices];
        let mut active = vec![true; opts.devices];
        let mut crash_points: Vec<u64> = opts
            .plan
            .crash
            .as_ref()
            .map(|c| c.points.clone())
            .unwrap_or_default();
        crash_points.reverse(); // pop() yields ascending order
        let mut restarts = 0u64;
        let mut retired = 0u64;
        let mut dedup_replays = 0u64;
        let mut late_joins = 0u64;
        let mut round_dropouts = 0u64;
        // Rounds mode: the highest round id each device has submitted a
        // masked share to (0 = none yet); a device contributes to a round at
        // most once, later minibatches in the same round free-run.
        let mut last_submitted = vec![0u64; opts.devices];
        for d in 0..opts.devices as u64 {
            let join = opts
                .plan
                .churn
                .as_ref()
                .map_or(0, |churn| churn.join_round(d));
            if join > 0 {
                late_joins += 1;
                self.log(format!("device {d} joins late at round {join}"));
            }
        }

        for round in 0..opts.samples_per_device as u64 {
            for d in 0..opts.devices {
                let device_id = d as u64;
                if !active[d] || cursors[d] >= streams[d].len() {
                    continue;
                }
                if let Some(churn) = &opts.plan.churn {
                    if round < churn.join_round(device_id) {
                        continue;
                    }
                }
                let sample = streams[d][cursors[d]].clone();
                cursors[d] += 1;
                if devices[d].observe(sample) != DeviceAction::RequestCheckout {
                    continue;
                }
                if let Some(churn) = &opts.plan.churn {
                    let stall = churn.straggle_ms(device_id);
                    if stall > 0 {
                        // The straggler path: a slow device whose checkins
                        // trickle in alone, landing on the aggregator's
                        // idle-flush path instead of filling epochs.
                        std::thread::sleep(Duration::from_millis(stall));
                    }
                }
                let checked_out = match self.checkout_until_served(&clients[d], &mut devices[d]) {
                    Some(c) => c,
                    None => {
                        // Budget refusal or task end: the device is done.
                        active[d] = false;
                        continue;
                    }
                };
                if checked_out.stopped {
                    self.log(format!("device {device_id} observed task stop"));
                    active[d] = false;
                    continue;
                }
                let payload = devices[d].compute_checkin(
                    &model,
                    &checked_out.params,
                    checked_out.iteration,
                    opts.server.lambda,
                    &mut rngs[d],
                )?;
                let nonce = payload.nonce;
                if opts.rounds.is_some() {
                    if !self.round_step(&clients[d], &payload, &mut last_submitted[d])? {
                        round_dropouts += 1;
                        continue;
                    }
                } else {
                    self.checkin_until_acked(&clients[d], &payload)?;
                }
                acked[d] += 1;
                self.log(format!(
                    "round {round} device {device_id} checkin nonce {nonce} acked (server it {})",
                    handle.iteration()
                ));
                if let Some(churn) = &opts.plan.churn {
                    if let Some(limit) = churn.retire_after_checkins(device_id) {
                        if acked[d] >= limit {
                            retired += 1;
                            active[d] = false;
                            self.log(format!("device {device_id} retires after {limit} checkins"));
                        }
                    }
                }
                // Scripted crash points: once the applied-iteration count
                // passes the next point, crash-stop the server (no flush, no
                // checkpoint) and restart it from its data directory.
                if crash_points
                    .last()
                    .is_some_and(|&point| handle.iteration() >= point)
                {
                    crash_points.pop();
                    dedup_replays += handle.runtime_stats().get("dedup_replays");
                    let at = handle.iteration();
                    handle.kill();
                    handle = self.start_server()?;
                    restarts += 1;
                    let recovered = handle
                        .recovery_report()
                        .map(|r| (r.from_snapshot, r.replayed_epochs));
                    self.log(format!(
                        "server crash at iteration {at}; restarted (recovery {recovered:?}), \
                         now at {}",
                        handle.iteration()
                    ));
                    let addr = handle.addr();
                    for client in &mut clients {
                        *client = client.clone().with_addr(addr);
                    }
                }
            }
        }

        // Settle the open round before reading the ledger: its pending
        // submissions were acknowledged, so the invariant `ledger == ε·acked`
        // requires their finalization charge to land first.
        handle.settle_rounds();
        let final_metrics = handle.runtime_stats();
        dedup_replays += final_metrics.get("dedup_replays");
        let report = ChaosReport {
            metrics: final_metrics,
            params: handle.params(),
            iterations: handle.iteration(),
            ledger: handle.budget_ledger(),
            total_samples: handle.total_samples(),
            acked_checkins: acked,
            restarts,
            late_joins,
            retired,
            dedup_replays,
            round_dropouts,
            trace: std::mem::take(&mut self.trace),
        };
        handle.shutdown();
        Ok(report)
    }

    /// Checks out until the server serves the request, absorbing transport
    /// faults. `None` when the server refuses the device for good (budget) —
    /// not reachable with an infinite ceiling, but handled for completeness.
    fn checkout_until_served(
        &mut self,
        client: &DeviceClient,
        device: &mut Device,
    ) -> Option<crate::client::CheckedOutParams> {
        loop {
            if device.begin_checkout().is_err() {
                device.abort_checkout();
                continue;
            }
            match client.checkout() {
                Ok(c) => return Some(c),
                Err(NetError::ServerError {
                    code: ErrorCode::BudgetExhausted,
                    ..
                }) => {
                    device.abort_checkout();
                    return None;
                }
                Err(e) => {
                    // Transport fault or transient refusal: keep the buffer
                    // and try again (Remark 1 — failed checkouts are
                    // non-critical). Termination rests on the fault rate
                    // being < 1 and the suite's watchdog.
                    self.log(format!("device {} checkout retry: {e}", client.device_id()));
                    device.abort_checkout();
                }
            }
        }
    }

    /// Retries one logical checkin (fixed nonce) until the server acknowledges
    /// it. The dedup nonce makes every retry idempotent, so "until acked"
    /// still means "applied exactly once".
    fn checkin_until_acked(
        &mut self,
        client: &DeviceClient,
        payload: &crowd_core::device::CheckinPayload,
    ) -> Result<()> {
        loop {
            match client.checkin(payload) {
                Ok(CheckinOutcome::BudgetExhausted) => {
                    // Unreachable under the driver's infinite ceiling; keep
                    // an invariant violation loud instead of counting an ack.
                    return Err(NetError::Round("budget exhausted mid-chaos-run"));
                }
                Ok(_) => return Ok(()),
                Err(e @ NetError::ServerError { code, .. }) => {
                    if code.is_retryable() {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    return Err(e);
                }
                Err(NetError::Io(_)) | Err(NetError::Proto(_)) => {
                    // Residual transport failure after the client's own
                    // retries: same nonce, try again.
                    self.log(format!(
                        "device {} checkin nonce {} transport retry",
                        client.device_id(),
                        payload.nonce
                    ));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Joins the current round, absorbing transport faults the same way
    /// [`Self::checkout_until_served`] does for plain checkouts.
    fn join_round_until_served(&mut self, client: &DeviceClient) -> Result<RoundSession> {
        loop {
            match client.join_round() {
                Ok(session) => return Ok(session),
                // The server runs free: a harness misconfiguration, not a
                // transport fault — fail loudly.
                Err(e @ NetError::Round(_)) => return Err(e),
                Err(e @ NetError::ServerError { code, .. }) if !code.is_retryable() => {
                    return Err(e)
                }
                Err(e) => {
                    self.log(format!(
                        "device {} join_round retry: {e}",
                        client.device_id()
                    ));
                }
            }
        }
    }

    /// One minibatch under rounds mode. The device joins the current round;
    /// Unselected devices (and Selected ones whose share is already in)
    /// free-run, Selected devices submit the payload as a masked cohort share
    /// — unless the churn schedule scripts a mid-round dropout, in which case
    /// the minibatch is discarded unsent. Returns `Ok(true)` when an ack was
    /// obtained, `Ok(false)` when the dropout fired.
    fn round_step(
        &mut self,
        client: &DeviceClient,
        payload: &CheckinPayload,
        last_submitted: &mut u64,
    ) -> Result<bool> {
        loop {
            let session = self.join_round_until_served(client)?;
            let round_id = session.round_id();
            if session.role() == Role::Unselected || *last_submitted == round_id {
                // Free-run checkins are what advance the round's deadline
                // clock, so unselected devices still make progress.
                self.checkin_until_acked(client, payload)?;
                return Ok(true);
            }
            if let Some(churn) = &self.opts.plan.churn {
                if churn.round_dropout(client.device_id(), round_id) {
                    self.log(format!(
                        "device {} drops out of round {round_id} (minibatch nonce {} lost)",
                        client.device_id(),
                        payload.nonce
                    ));
                    return Ok(false);
                }
            }
            if self.submit_until_resolved(&session, payload)? {
                *last_submitted = round_id;
                return Ok(true);
            }
            // The round closed under us without our share: rejoin the
            // successor round and contribute there instead.
            self.log(format!(
                "device {} outdated in round {round_id}; resyncing",
                client.device_id()
            ));
        }
    }

    /// Drives one masked submission to an ack, retrying residual transport
    /// failures with the same nonce (server-side round dedup makes the retry
    /// idempotent even across the round's finalization). `Ok(true)` when
    /// acknowledged, `Ok(false)` on a `RoundOutdated` refusal.
    fn submit_until_resolved(
        &mut self,
        session: &RoundSession,
        payload: &CheckinPayload,
    ) -> Result<bool> {
        loop {
            match session.submit(payload) {
                Ok(CheckinOutcome::RoundOutdated { .. }) => return Ok(false),
                Ok(CheckinOutcome::BudgetExhausted) => {
                    return Err(NetError::Round("budget exhausted mid-chaos-run"));
                }
                Ok(_) => return Ok(true),
                Err(e @ NetError::ServerError { code, .. }) => {
                    if code.is_retryable() {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    return Err(e);
                }
                Err(NetError::Io(_)) | Err(NetError::Proto(_)) => {
                    self.log(format!(
                        "round {} submit nonce {} transport retry",
                        session.round_id(),
                        payload.nonce
                    ));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Clones a dataset's samples into a step-indexable stream.
fn collect_samples(data: &Dataset) -> Result<Vec<Sample>> {
    Ok(data.iter().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::chaos::TransportFaults;

    #[test]
    fn fault_free_run_is_reproducible_bitwise() {
        let a = ChaosCluster::new(FaultPlan::fault_free(5)).run().unwrap();
        let b = ChaosCluster::new(FaultPlan::fault_free(5)).run().unwrap();
        assert_eq!(a.params.as_slice(), b.params.as_slice());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.ledger, b.ledger);
        assert!(a.iterations > 0);
        assert_eq!(a.restarts, 0);
        assert_eq!(a.dedup_replays, 0);
    }

    #[test]
    fn ledger_charges_exactly_once_per_acked_checkin() {
        let report = ChaosCluster::new(FaultPlan::fault_free(3)).run().unwrap();
        for (device, eps) in &report.ledger {
            let expected = 0.25 * report.acked_checkins[*device as usize] as f64;
            assert!(
                (eps - expected).abs() < 1e-9,
                "device {device}: charged {eps}, expected {expected}"
            );
        }
    }

    #[test]
    fn transport_chaos_lands_bitwise_on_reference() {
        // One fixed seed as a unit-level smoke; tests/chaos.rs sweeps many.
        let reference = ChaosCluster::new(FaultPlan::fault_free(11)).run().unwrap();
        let mut plan = FaultPlan::transport_only(11);
        // Keep delays tiny for test latency.
        plan.transport = TransportFaults::from_seed(11, 2);
        let chaotic = ChaosCluster::new(plan).run().unwrap();
        assert_eq!(chaotic.params.as_slice(), reference.params.as_slice());
        assert_eq!(chaotic.iterations, reference.iterations);
        assert_eq!(chaotic.ledger, reference.ledger);
        assert_eq!(chaotic.acked_checkins, reference.acked_checkins);
    }

    #[test]
    fn rounds_fault_free_run_masks_submissions_and_charges_once_per_ack() {
        let report = ChaosCluster::new(FaultPlan::fault_free(21))
            .with_rounds()
            .run()
            .unwrap();
        assert!(report.iterations > 0);
        assert_eq!(report.round_dropouts, 0);
        assert!(
            report.metrics.get("round_submissions") > 0,
            "no masked submissions in a rounds-mode run"
        );
        for (device, eps) in &report.ledger {
            let expected = 0.25 * report.acked_checkins[*device as usize] as f64;
            assert!(
                (eps - expected).abs() < 1e-9,
                "device {device}: charged {eps}, expected {expected}"
            );
        }
    }

    #[test]
    fn rounds_transport_chaos_lands_bitwise_on_reference() {
        let reference = ChaosCluster::new(FaultPlan::fault_free(23))
            .with_rounds()
            .run()
            .unwrap();
        let mut plan = FaultPlan::transport_only(23);
        plan.transport = TransportFaults::from_seed(23, 2);
        let chaotic = ChaosCluster::new(plan).with_rounds().run().unwrap();
        assert_eq!(chaotic.params.as_slice(), reference.params.as_slice());
        assert_eq!(chaotic.iterations, reference.iterations);
        assert_eq!(chaotic.ledger, reference.ledger);
        assert_eq!(chaotic.acked_checkins, reference.acked_checkins);
    }

    #[test]
    fn rounds_with_scripted_dropouts_hold_the_ledger_invariant() {
        let report = ChaosCluster::new(FaultPlan::rounds(29))
            .with_rounds()
            .run()
            .unwrap();
        for (device, eps) in &report.ledger {
            let expected = 0.25 * report.acked_checkins[*device as usize] as f64;
            assert!(
                (eps - expected).abs() < 1e-9,
                "device {device}: charged {eps}, expected {expected}"
            );
        }
    }

    #[test]
    fn crash_plan_without_data_dir_is_rejected() {
        let cluster = ChaosCluster::new(FaultPlan::full(1, 100));
        assert!(cluster.run().is_err());
    }

    #[test]
    fn reactor_server_matches_threaded_bitwise_on_fault_free_runs() {
        // The sequential chaos schedule applies checkins in program order, so
        // the two servers — sharing ServerCore and AggRuntime — must land on
        // bitwise-identical parameters and ledgers for the same seed.
        let mut threaded = ChaosCluster::new(FaultPlan::fault_free(17));
        threaded.server_kind = ServerKind::Threaded;
        let mut reactor = ChaosCluster::new(FaultPlan::fault_free(17));
        reactor.server_kind = ServerKind::Reactor;
        let a = threaded.run().unwrap();
        let b = reactor.run().unwrap();
        assert_eq!(a.params.as_slice(), b.params.as_slice());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.acked_checkins, b.acked_checkins);
        assert_eq!(a.total_samples, b.total_samples);
        assert!(b.trace.iter().any(|line| line.contains("Reactor")));
    }
}
