//! Device-side TCP client running Device Routines 1–3 against a remote server.

use crate::error::NetError;
use crate::Result;
use crowd_core::config::{DeviceConfig, PrivacyConfig};
use crowd_core::device::{Device, DeviceAction};
use crowd_data::Dataset;
use crowd_learning::model::Model;
use crowd_linalg::{GradientUpdate, Vector};
use crowd_proto::frame::{read_message_pooled, write_message_pooled, DEFAULT_MAX_FRAME};
use crowd_proto::message::{
    BatchAck, BatchCheckinRequest, CheckinRequest, CheckoutRequest, GradientPayload, Message,
};
use crowd_proto::{AuthToken, BufPool, PROTOCOL_VERSION};
use rand::Rng;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Bounded retry-with-backoff policy for "server busy" backpressure replies.
///
/// The aggregation runtime sheds load by rejecting checkins when its ingest
/// queue is full; those rejections are transient by design, so the client
/// retries them transparently with exponential backoff, preferring the server's
/// own retry-after hint over the local schedule when one is provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `base_backoff · 2^(k-1)`, capped.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Default policy: 5 attempts, 1 ms base backoff, 50 ms cap.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry attempt `attempt` (0-based count of failures so
    /// far), honoring the server's retry-after hint when present.
    fn backoff(&self, attempt: u32, hint_ms: u32) -> Duration {
        let scheduled = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        scheduled.max(Duration::from_millis(hint_ms as u64))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// Maps a device's gradient representation onto the wire encoding without
/// densifying: a sparse update ships only its stored coordinates.
fn wire_gradient(gradient: &GradientUpdate) -> GradientPayload {
    match gradient {
        GradientUpdate::Dense(v) => GradientPayload::Dense(v.as_slice().to_vec()),
        GradientUpdate::Sparse(s) => GradientPayload::Sparse {
            dim: s.dim() as u32,
            indices: s.indices().to_vec(),
            values: s.values().to_vec(),
        },
    }
}

/// A device's view of a checkout: the parameters and the server iteration they
/// were read at.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedOutParams {
    /// Server iteration at checkout time.
    pub iteration: u64,
    /// The parameter vector.
    pub params: Vector,
    /// Whether the server reports the task as stopped.
    pub stopped: bool,
}

/// Summary of one device's participation in a networked task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceReport {
    /// Samples observed by the device.
    pub samples_observed: u64,
    /// Checkins successfully acknowledged by the server.
    pub checkins: u64,
    /// Whether the device stopped because the server reported the task ended.
    pub stopped_by_server: bool,
    /// Whether the device stopped because the server refused to query it
    /// further (its ε budget is spent).
    pub budget_exhausted: bool,
}

/// A TCP client for one device.
#[derive(Debug, Clone)]
pub struct DeviceClient {
    addr: SocketAddr,
    device_id: u64,
    token: AuthToken,
    retry: RetryPolicy,
    /// Reused frame buffers (shared across clones, e.g. a gateway's workers).
    pool: Arc<BufPool>,
}

impl DeviceClient {
    /// Creates a client for `device_id` talking to the server at `addr`, with
    /// the default busy-retry policy.
    pub fn new(addr: SocketAddr, device_id: u64, token: AuthToken) -> Self {
        DeviceClient {
            addr,
            device_id,
            token,
            retry: RetryPolicy::new(),
            pool: Arc::new(BufPool::default()),
        }
    }

    /// Replaces the busy-retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The device id this client authenticates as.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    fn exchange_once(&self, request: &Message) -> Result<Message> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        write_message_pooled(&mut stream, request, &self.pool)?;
        Ok(read_message_pooled(
            &mut stream,
            &self.pool,
            DEFAULT_MAX_FRAME,
        )?)
    }

    /// One request/reply exchange, transparently retrying "server busy"
    /// backpressure replies (either a dedicated `Busy` message or an
    /// `ErrorReply` with the retryable [`ErrorCode::Busy`]) with backoff.
    ///
    /// [`ErrorCode::Busy`]: crowd_proto::message::ErrorCode::Busy
    fn exchange(&self, request: &Message) -> Result<Message> {
        let mut failures = 0u32;
        loop {
            let reply = self.exchange_once(request)?;
            let hint_ms = match &reply {
                Message::Busy(b) => b.retry_after_ms,
                Message::Error(e) if e.code.is_retryable() => 0,
                _ => return Ok(reply),
            };
            failures += 1;
            if failures >= self.retry.max_attempts {
                return Err(NetError::ServerError {
                    code: crowd_proto::message::ErrorCode::Busy,
                    detail: format!("server still busy after {failures} attempts"),
                });
            }
            std::thread::sleep(self.retry.backoff(failures - 1, hint_ms));
        }
    }

    /// Checks out the current parameters from the server (Fig. 2, steps 2–3).
    pub fn checkout(&self) -> Result<CheckedOutParams> {
        let reply = self.exchange(&Message::CheckoutRequest(CheckoutRequest {
            version: PROTOCOL_VERSION,
            device_id: self.device_id,
            token: self.token,
        }))?;
        match reply {
            Message::CheckoutResponse(r) => Ok(CheckedOutParams {
                iteration: r.iteration,
                params: Vector::from_vec(r.params),
                stopped: r.stopped,
            }),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkout_response",
                received: other.name(),
            }),
        }
    }

    /// Checks in a sanitized payload (Fig. 2, steps 4–5). Returns
    /// `(accepted, stopped)`.
    pub fn checkin(&self, payload: &crowd_core::device::CheckinPayload) -> Result<(bool, bool)> {
        let reply = self.exchange(&Message::CheckinRequest(CheckinRequest {
            device_id: self.device_id,
            token: self.token,
            checkout_iteration: payload.checkout_iteration,
            gradient: wire_gradient(&payload.gradient),
            num_samples: payload.num_samples as u32,
            error_count: payload.error_count,
            label_counts: payload.label_counts.clone(),
        }))?;
        match reply {
            Message::CheckinAck(ack) => Ok((ack.accepted, ack.stopped)),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkin_ack",
                received: other.name(),
            }),
        }
    }

    /// Checks in several buffered minibatches per frame (the `BatchCheckin`
    /// message), amortizing connection and framing overhead for co-located
    /// payloads. Batches larger than the codec's [`MAX_BATCH_ITEMS`] decode cap
    /// are split across frames transparently. Returns one positional
    /// acknowledgement per payload.
    ///
    /// [`MAX_BATCH_ITEMS`]: crowd_proto::codec::MAX_BATCH_ITEMS
    pub fn checkin_batch(
        &self,
        payloads: &[crowd_core::device::CheckinPayload],
    ) -> Result<Vec<BatchAck>> {
        use crowd_proto::message::ErrorCode;
        let mut acks = Vec::with_capacity(payloads.len());
        for chunk in payloads.chunks(crowd_proto::codec::MAX_BATCH_ITEMS) {
            let items: Vec<CheckinRequest> = chunk
                .iter()
                .map(|payload| CheckinRequest {
                    device_id: self.device_id,
                    token: self.token,
                    checkout_iteration: payload.checkout_iteration,
                    gradient: wire_gradient(&payload.gradient),
                    num_samples: payload.num_samples as u32,
                    error_count: payload.error_count,
                    label_counts: payload.label_counts.clone(),
                })
                .collect();
            let mut chunk_acks = self.batch_exchange(items.clone())?;
            // Backpressure inside a batch reply arrives per item
            // (reject = Busy), not as a whole-message Busy that `exchange`
            // would retry — resend just the rejected items under the same
            // retry policy so they are not silently dropped.
            let mut failures = 0u32;
            loop {
                let busy: Vec<usize> = chunk_acks
                    .iter()
                    .enumerate()
                    .filter(|(_, ack)| ack.reject == Some(ErrorCode::Busy))
                    .map(|(i, _)| i)
                    .collect();
                if busy.is_empty() {
                    break;
                }
                failures += 1;
                if failures >= self.retry.max_attempts {
                    // Out of retries: the Busy rejections are reported to the
                    // caller in the acks rather than swallowed.
                    break;
                }
                std::thread::sleep(self.retry.backoff(failures - 1, 0));
                let retry_items: Vec<CheckinRequest> =
                    busy.iter().map(|&i| items[i].clone()).collect();
                let retry_acks = self.batch_exchange(retry_items)?;
                for (slot, ack) in busy.into_iter().zip(retry_acks) {
                    chunk_acks[slot] = ack;
                }
            }
            acks.extend(chunk_acks);
        }
        Ok(acks)
    }

    /// One batch-checkin frame exchange, validated to return exactly one ack
    /// per item.
    fn batch_exchange(&self, items: Vec<CheckinRequest>) -> Result<Vec<BatchAck>> {
        let expected = items.len();
        let reply = self.exchange(&Message::BatchCheckinRequest(BatchCheckinRequest { items }))?;
        match reply {
            Message::BatchCheckinAck(ack) => {
                if ack.acks.len() != expected {
                    return Err(NetError::UnexpectedMessage {
                        expected: "one ack per batch item",
                        received: "mismatched batch ack",
                    });
                }
                Ok(ack.acks)
            }
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "batch_checkin_ack",
                received: other.name(),
            }),
        }
    }

    /// Runs the full device loop over a local data stream: buffer samples, check
    /// out when the minibatch fills, compute and sanitize the statistics, check in,
    /// and stop when the stream is exhausted or the server reports the task ended.
    pub fn run_task<M: Model + ?Sized, R: Rng + ?Sized>(
        &self,
        model: &M,
        local_data: &Dataset,
        device_config: DeviceConfig,
        privacy: PrivacyConfig,
        lambda: f64,
        rng: &mut R,
    ) -> Result<DeviceReport> {
        let mut device = Device::new(self.device_id, device_config, privacy)?;
        let mut report = DeviceReport::default();
        for sample in local_data.iter() {
            report.samples_observed += 1;
            let action = device.observe(sample.clone());
            if action != DeviceAction::RequestCheckout {
                continue;
            }
            device.begin_checkout()?;
            let checked_out = match self.checkout() {
                Ok(c) => c,
                Err(e) => {
                    device.abort_checkout();
                    // The server refusing to query this device further is a
                    // normal end of participation, not a failure.
                    if matches!(
                        e,
                        NetError::ServerError {
                            code: crowd_proto::message::ErrorCode::BudgetExhausted,
                            ..
                        }
                    ) {
                        report.budget_exhausted = true;
                        break;
                    }
                    // Remark 1: a failed checkout is non-critical — keep the buffer
                    // and retry on a later sample.
                    if matches!(e, NetError::ServerError { .. }) {
                        return Err(e);
                    }
                    continue;
                }
            };
            if checked_out.stopped {
                report.stopped_by_server = true;
                break;
            }
            let payload = device.compute_checkin(
                model,
                &checked_out.params,
                checked_out.iteration,
                lambda,
                rng,
            )?;
            // The payload is already computed, so sustained backpressure is
            // survivable: after `checkin`'s own per-request retries are
            // exhausted, keep resending at the policy's backoff ceiling until
            // the server has queue capacity again. Only a persistently wedged
            // server (~200 rounds) makes a device give the minibatch up.
            let mut busy_rounds = 0u32;
            loop {
                match self.checkin(&payload) {
                    Ok((_accepted, stopped)) => {
                        report.checkins += 1;
                        if stopped {
                            report.stopped_by_server = true;
                        }
                        break;
                    }
                    Err(NetError::ServerError { code, detail }) => {
                        if code.is_retryable() && busy_rounds < 200 {
                            busy_rounds += 1;
                            std::thread::sleep(
                                self.retry.max_backoff.max(Duration::from_millis(1)),
                            );
                            continue;
                        }
                        // Budget exhaustion ends participation gracefully; the
                        // rejected minibatch is simply lost.
                        if code == crowd_proto::message::ErrorCode::BudgetExhausted {
                            report.budget_exhausted = true;
                            break;
                        }
                        return Err(NetError::ServerError { code, detail });
                    }
                    Err(_) => {
                        // Transport failure on checkin is likewise non-critical;
                        // the minibatch is simply lost (the buffer was already
                        // cleared).
                        break;
                    }
                }
            }
            if report.stopped_by_server || report.budget_exhausted {
                break;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NetServer;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use crowd_proto::auth::TokenRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkout_and_checkin_against_live_server() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        assert_eq!(client.device_id(), 1);

        let checked_out = client.checkout().unwrap();
        assert_eq!(checked_out.iteration, 0);
        assert_eq!(checked_out.params.len(), 6);

        let payload = crowd_core::device::CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            gradient: Vector::from_vec(vec![0.1; 6]).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let (accepted, stopped) = client.checkin(&payload).unwrap();
        assert!(accepted);
        assert!(!stopped);
        assert_eq!(handle.iteration(), 1);
        handle.shutdown();
    }

    #[test]
    fn batch_checkin_amortizes_framing() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        let payloads: Vec<crowd_core::device::CheckinPayload> = (0..3)
            .map(|i| crowd_core::device::CheckinPayload {
                device_id: 1,
                checkout_iteration: i,
                gradient: Vector::from_vec(vec![0.1; 6]).into(),
                num_samples: 2,
                error_count: 0,
                label_counts: vec![1, 1],
            })
            .collect();
        let acks = client.checkin_batch(&payloads).unwrap();
        assert_eq!(acks.len(), 3);
        assert!(acks.iter().all(|a| a.accepted && a.reject.is_none()));
        assert_eq!(handle.iteration(), 3);
        assert_eq!(handle.total_samples(), 6);
        handle.shutdown();
    }

    #[test]
    fn retry_policy_backoff_honors_hint_and_cap() {
        let policy = RetryPolicy::new();
        // Scheduled backoff doubles from the base and saturates at the cap.
        assert_eq!(policy.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(policy.backoff(3, 0), Duration::from_millis(8));
        assert_eq!(policy.backoff(16, 0), Duration::from_millis(50));
        // A larger server hint wins over the local schedule.
        assert_eq!(policy.backoff(0, 30), Duration::from_millis(30));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn unauthorized_client_gets_server_error() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let bad = DeviceClient::new(handle.addr(), 0, AuthToken::derive(0, 999));
        match bad.checkout() {
            Err(NetError::ServerError { .. }) => {}
            other => panic!("expected ServerError, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn run_task_trains_the_server_model() {
        use crowd_data::synthetic::GaussianMixtureSpec;
        let mut rng = StdRng::seed_from_u64(0);
        let (train, _test) = GaussianMixtureSpec::new(6, 3)
            .with_train_size(60)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 7);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 0, AuthToken::derive(0, 7));
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let report = client
            .run_task(
                &model,
                &train,
                DeviceConfig::new(5),
                PrivacyConfig::non_private(),
                0.0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(report.samples_observed, 60);
        assert_eq!(report.checkins, 12);
        assert_eq!(handle.iteration(), 12);
        assert_eq!(handle.total_samples(), 60);
        handle.shutdown();
    }
}
