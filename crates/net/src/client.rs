//! Device-side TCP client running Device Routines 1–3 against a remote server.

use crate::error::NetError;
use crate::Result;
use crowd_core::config::{DeviceConfig, PrivacyConfig};
use crowd_core::device::{Device, DeviceAction};
use crowd_data::Dataset;
use crowd_learning::model::Model;
use crowd_linalg::Vector;
use crowd_proto::auth::AuthToken;
use crowd_proto::frame::{read_message, write_message};
use crowd_proto::message::{CheckinRequest, CheckoutRequest, Message};
use crowd_proto::PROTOCOL_VERSION;
use rand::Rng;
use std::net::{SocketAddr, TcpStream};

/// A device's view of a checkout: the parameters and the server iteration they
/// were read at.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedOutParams {
    /// Server iteration at checkout time.
    pub iteration: u64,
    /// The parameter vector.
    pub params: Vector,
    /// Whether the server reports the task as stopped.
    pub stopped: bool,
}

/// Summary of one device's participation in a networked task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceReport {
    /// Samples observed by the device.
    pub samples_observed: u64,
    /// Checkins successfully acknowledged by the server.
    pub checkins: u64,
    /// Whether the device stopped because the server reported the task ended.
    pub stopped_by_server: bool,
}

/// A TCP client for one device.
#[derive(Debug, Clone)]
pub struct DeviceClient {
    addr: SocketAddr,
    device_id: u64,
    token: AuthToken,
}

impl DeviceClient {
    /// Creates a client for `device_id` talking to the server at `addr`.
    pub fn new(addr: SocketAddr, device_id: u64, token: AuthToken) -> Self {
        DeviceClient {
            addr,
            device_id,
            token,
        }
    }

    /// The device id this client authenticates as.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    fn exchange(&self, request: &Message) -> Result<Message> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        write_message(&mut stream, request)?;
        Ok(read_message(&mut stream)?)
    }

    /// Checks out the current parameters from the server (Fig. 2, steps 2–3).
    pub fn checkout(&self) -> Result<CheckedOutParams> {
        let reply = self.exchange(&Message::CheckoutRequest(CheckoutRequest {
            version: PROTOCOL_VERSION,
            device_id: self.device_id,
            token: self.token,
        }))?;
        match reply {
            Message::CheckoutResponse(r) => Ok(CheckedOutParams {
                iteration: r.iteration,
                params: Vector::from_vec(r.params),
                stopped: r.stopped,
            }),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkout_response",
                received: other.name(),
            }),
        }
    }

    /// Checks in a sanitized payload (Fig. 2, steps 4–5). Returns
    /// `(accepted, stopped)`.
    pub fn checkin(&self, payload: &crowd_core::device::CheckinPayload) -> Result<(bool, bool)> {
        let reply = self.exchange(&Message::CheckinRequest(CheckinRequest {
            device_id: self.device_id,
            token: self.token,
            checkout_iteration: payload.checkout_iteration,
            gradient: payload.gradient.as_slice().to_vec(),
            num_samples: payload.num_samples as u32,
            error_count: payload.error_count,
            label_counts: payload.label_counts.clone(),
        }))?;
        match reply {
            Message::CheckinAck(ack) => Ok((ack.accepted, ack.stopped)),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkin_ack",
                received: other.name(),
            }),
        }
    }

    /// Runs the full device loop over a local data stream: buffer samples, check
    /// out when the minibatch fills, compute and sanitize the statistics, check in,
    /// and stop when the stream is exhausted or the server reports the task ended.
    pub fn run_task<M: Model + ?Sized, R: Rng + ?Sized>(
        &self,
        model: &M,
        local_data: &Dataset,
        device_config: DeviceConfig,
        privacy: PrivacyConfig,
        lambda: f64,
        rng: &mut R,
    ) -> Result<DeviceReport> {
        let mut device = Device::new(self.device_id, device_config, privacy)?;
        let mut report = DeviceReport::default();
        for sample in local_data.iter() {
            report.samples_observed += 1;
            let action = device.observe(sample.clone());
            if action != DeviceAction::RequestCheckout {
                continue;
            }
            device.begin_checkout()?;
            let checked_out = match self.checkout() {
                Ok(c) => c,
                Err(e) => {
                    // Remark 1: a failed checkout is non-critical — keep the buffer
                    // and retry on a later sample.
                    device.abort_checkout();
                    if matches!(e, NetError::ServerError { .. }) {
                        return Err(e);
                    }
                    continue;
                }
            };
            if checked_out.stopped {
                report.stopped_by_server = true;
                break;
            }
            let payload = device.compute_checkin(
                model,
                &checked_out.params,
                checked_out.iteration,
                lambda,
                rng,
            )?;
            match self.checkin(&payload) {
                Ok((_accepted, stopped)) => {
                    report.checkins += 1;
                    if stopped {
                        report.stopped_by_server = true;
                        break;
                    }
                }
                Err(NetError::ServerError { code, detail }) => {
                    return Err(NetError::ServerError { code, detail })
                }
                Err(_) => {
                    // Transport failure on checkin is likewise non-critical; the
                    // minibatch is simply lost (the buffer was already cleared).
                    continue;
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NetServer;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use crowd_proto::auth::TokenRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkout_and_checkin_against_live_server() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        assert_eq!(client.device_id(), 1);

        let checked_out = client.checkout().unwrap();
        assert_eq!(checked_out.iteration, 0);
        assert_eq!(checked_out.params.len(), 6);

        let payload = crowd_core::device::CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            gradient: Vector::from_vec(vec![0.1; 6]),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let (accepted, stopped) = client.checkin(&payload).unwrap();
        assert!(accepted);
        assert!(!stopped);
        assert_eq!(handle.iteration(), 1);
        handle.shutdown();
    }

    #[test]
    fn unauthorized_client_gets_server_error() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let bad = DeviceClient::new(handle.addr(), 0, AuthToken::derive(0, 999));
        match bad.checkout() {
            Err(NetError::ServerError { .. }) => {}
            other => panic!("expected ServerError, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn run_task_trains_the_server_model() {
        use crowd_data::synthetic::GaussianMixtureSpec;
        let mut rng = StdRng::seed_from_u64(0);
        let (train, _test) = GaussianMixtureSpec::new(6, 3)
            .with_train_size(60)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 7);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 0, AuthToken::derive(0, 7));
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let report = client
            .run_task(
                &model,
                &train,
                DeviceConfig::new(5),
                PrivacyConfig::non_private(),
                0.0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(report.samples_observed, 60);
        assert_eq!(report.checkins, 12);
        assert_eq!(handle.iteration(), 12);
        assert_eq!(handle.total_samples(), 60);
        handle.shutdown();
    }
}
