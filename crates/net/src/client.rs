//! Device-side TCP client running Device Routines 1–3 against a remote server.

use crate::error::NetError;
use crate::Result;
use crowd_core::config::{DeviceConfig, PrivacyConfig};
use crowd_core::device::{CheckinPayload, Device, DeviceAction};
use crowd_data::Dataset;
use crowd_learning::model::Model;
use crowd_linalg::{GradientUpdate, Vector};
use crowd_proto::frame::{read_message_pooled, write_message_pooled, DEFAULT_MAX_FRAME};
use crowd_proto::message::{
    BatchAck, BatchCheckinRequest, CheckinAck, CheckinRequest, CheckoutRequest, ErrorCode,
    GradientPayload, Message, MetricsReport, MetricsRequest, RoundParams,
};
use crowd_proto::{AuthToken, BufPool, PROTOCOL_VERSION};
use crowd_rounds::Role;
use crowd_sim::chaos::{FaultAction, TransportFaults};
use rand::Rng;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded retry-with-backoff policy for "server busy" backpressure replies.
///
/// The aggregation runtime sheds load by rejecting checkins when its ingest
/// queue is full; those rejections are transient by design, so the client
/// retries them transparently with exponential backoff, preferring the server's
/// own retry-after hint over the local schedule when one is provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `base_backoff · 2^(k-1)`, capped.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Default policy: 5 attempts, 1 ms base backoff, 50 ms cap.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry attempt `attempt` (0-based count of failures so
    /// far), honoring the server's retry-after hint when present.
    fn backoff(&self, attempt: u32, hint_ms: u32) -> Duration {
        let scheduled = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        scheduled.max(Duration::from_millis(hint_ms as u64))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// Maps a device's gradient representation onto the wire encoding without
/// densifying: a sparse update ships only its stored coordinates, and a
/// quantized update ships its `i16` levels plus the shared scale.
fn wire_gradient(gradient: &GradientUpdate) -> GradientPayload {
    match gradient {
        GradientUpdate::Dense(v) => GradientPayload::Dense(v.as_slice().to_vec()),
        GradientUpdate::Sparse(s) => GradientPayload::Sparse {
            dim: s.dim() as u32,
            indices: s.indices().to_vec(),
            values: s.values().to_vec(),
        },
        GradientUpdate::Quantized(q) => GradientPayload::Quantized {
            scale: q.scale(),
            levels: q.levels().to_vec(),
        },
    }
}

/// A device's view of a checkout: the parameters and the server iteration they
/// were read at.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedOutParams {
    /// Server iteration at checkout time.
    pub iteration: u64,
    /// The parameter vector.
    pub params: Vector,
    /// Whether the server reports the task as stopped.
    pub stopped: bool,
    /// The server's current round parameters, when it runs the round-based
    /// cohort protocol (wire v6); `None` on a free-running server.
    pub round: Option<RoundParams>,
}

/// Typed result of one checkin, replacing the old `(accepted, stopped)` pair.
///
/// Budget exhaustion and round staleness arrive on the wire as error replies
/// but are *protocol states*, not failures: they surface as variants here so
/// a caller matches once instead of inspecting error codes. Transport
/// failures and genuine server errors still arrive as `Err`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckinOutcome {
    /// The gradient was applied; the server has advanced to `iteration`.
    Applied {
        /// Server iteration after applying this checkin.
        iteration: u64,
    },
    /// A dedup replay: an earlier attempt of this nonce was already applied
    /// (and ε-charged), so nothing happened twice.
    Deduped,
    /// The task's stopping criterion is met and the device should stop
    /// collecting; `applied` reports whether this checkin still made it in.
    Stopped {
        /// Whether the gradient was applied before the stop was observed.
        applied: bool,
    },
    /// The device's privacy budget is spent; it should end participation.
    BudgetExhausted,
    /// The round this checkin named closed while the device was computing.
    /// Non-fatal: refetch the round parameters (the server's current round is
    /// included here), re-derive the role, and resubmit against the new round.
    RoundOutdated {
        /// The server's current round id.
        current_round: u64,
    },
}

impl CheckinOutcome {
    /// Whether this checkin's gradient was (or had already been) applied.
    pub fn applied(&self) -> bool {
        matches!(
            self,
            CheckinOutcome::Applied { .. }
                | CheckinOutcome::Deduped
                | CheckinOutcome::Stopped { applied: true }
        )
    }

    /// Whether the server reported the task's stopping criterion as met.
    pub fn task_stopped(&self) -> bool {
        matches!(self, CheckinOutcome::Stopped { .. })
    }
}

impl From<CheckinAck> for CheckinOutcome {
    fn from(ack: CheckinAck) -> Self {
        if ack.deduped {
            CheckinOutcome::Deduped
        } else if ack.stopped {
            CheckinOutcome::Stopped {
                applied: ack.accepted,
            }
        } else if ack.accepted {
            CheckinOutcome::Applied {
                iteration: ack.iteration,
            }
        } else {
            // The server only withholds `accepted` once the task stopped;
            // map the combination defensively rather than invent a variant.
            CheckinOutcome::Stopped { applied: false }
        }
    }
}

/// Folds a checkin reply into the typed outcome: budget exhaustion and round
/// staleness become `Ok` protocol states, everything else an error.
fn checkin_outcome(reply: Message) -> Result<CheckinOutcome> {
    match reply {
        Message::CheckinAck(ack) => Ok(ack.into()),
        Message::Error(e) => match e.code {
            ErrorCode::BudgetExhausted => Ok(CheckinOutcome::BudgetExhausted),
            ErrorCode::RoundOutdated => Ok(CheckinOutcome::RoundOutdated {
                current_round: e.round_id,
            }),
            _ => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
        },
        other => Err(NetError::UnexpectedMessage {
            expected: "checkin_ack",
            received: other.name(),
        }),
    }
}

/// Summary of one device's participation in a networked task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceReport {
    /// Samples observed by the device.
    pub samples_observed: u64,
    /// Checkins successfully acknowledged by the server.
    pub checkins: u64,
    /// Whether the device stopped because the server reported the task ended.
    pub stopped_by_server: bool,
    /// Whether the device stopped because the server refused to query it
    /// further (its ε budget is spent).
    pub budget_exhausted: bool,
}

/// A TCP client for one device.
#[derive(Debug, Clone)]
pub struct DeviceClient {
    addr: SocketAddr,
    device_id: u64,
    token: AuthToken,
    retry: RetryPolicy,
    /// Reused frame buffers (shared across clones, e.g. a gateway's workers).
    pool: Arc<BufPool>,
    /// Optional seeded transport-fault shim (chaos testing): decides per wire
    /// exchange whether the frame is dropped, delayed, duplicated, or
    /// truncated. `None` = a faithful transport.
    faults: Option<Arc<TransportFaults>>,
    /// Monotonic wire-exchange counter feeding the fault shim (shared across
    /// clones and [`DeviceClient::with_addr`] reconnects, so the fault
    /// schedule continues instead of restarting).
    ops: Arc<AtomicU64>,
}

/// A transport failure injected by the chaos shim (or suffered for real);
/// indistinguishable from a genuine socket error by design.
fn chaos_io_error(detail: &str) -> NetError {
    NetError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        format!("chaos: {detail}"),
    ))
}

/// `true` for failures worth retrying on an idempotent request: the socket
/// died somewhere between connect and reply, so the server may or may not
/// have processed the request.
fn is_transient_transport(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Io(_) | NetError::Proto(crowd_proto::ProtoError::Io(_))
    )
}

/// The single construction path for [`DeviceClient`]: the address, identity,
/// and token are mandatory, everything else layers on before [`build`]
/// (replacing the old `new` / `with_retry` / `with_transport_faults`
/// special-case constructors).
///
/// [`build`]: DeviceClientBuilder::build
#[derive(Debug, Clone)]
pub struct DeviceClientBuilder {
    addr: SocketAddr,
    device_id: u64,
    token: AuthToken,
    retry: RetryPolicy,
    faults: Option<Arc<TransportFaults>>,
}

impl DeviceClientBuilder {
    /// Replaces the default busy-retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Disables retries entirely (one attempt per request).
    pub fn no_retry(self) -> Self {
        self.retry(RetryPolicy::none())
    }

    /// Installs a seeded transport-fault shim: every wire exchange consults it
    /// and may be dropped, delayed, duplicated, or truncated. The client's
    /// retry and dedup machinery must absorb whatever it injects.
    pub fn transport_faults(mut self, faults: Arc<TransportFaults>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builds the client.
    pub fn build(self) -> DeviceClient {
        DeviceClient {
            addr: self.addr,
            device_id: self.device_id,
            token: self.token,
            retry: self.retry,
            pool: Arc::new(BufPool::default()),
            faults: self.faults,
            ops: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl DeviceClient {
    /// Starts building a client for `device_id` talking to the server at
    /// `addr`, with the default busy-retry policy and a faithful transport.
    pub fn builder(addr: SocketAddr, device_id: u64, token: AuthToken) -> DeviceClientBuilder {
        DeviceClientBuilder {
            addr,
            device_id,
            token,
            retry: RetryPolicy::new(),
            faults: None,
        }
    }

    /// Re-targets the client at a new address (a restarted server on a fresh
    /// ephemeral port), keeping the fault-shim schedule and buffer pool.
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// The device id this client authenticates as.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    fn exchange_once(&self, request: &Message) -> Result<Message> {
        let action = match &self.faults {
            Some(faults) => faults.decide(self.device_id, self.ops.fetch_add(1, Ordering::Relaxed)),
            None => FaultAction::None,
        };
        self.exchange_once_with(request, action)
    }

    /// One wire exchange under an explicit fault decision.
    fn exchange_once_with(&self, request: &Message, action: FaultAction) -> Result<Message> {
        if let FaultAction::DelaySend { ms } = action {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if action == FaultAction::DropBeforeSend {
            // The server never sees the request: safe to retry blindly.
            return Err(chaos_io_error("connection dropped before send"));
        }
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        match action {
            FaultAction::TruncateFrame => {
                // Transmit a strict prefix of the frame and hang up: the
                // server must discard the partial frame, the client must treat
                // the upload as unconfirmed. The frame bytes come from the
                // canonical framing layer (written into a Vec), so the fault
                // always truncates a genuine frame, whatever the layout.
                use std::io::Write;
                let mut frame = Vec::new();
                crowd_proto::frame::write_message(&mut frame, request)?;
                frame.truncate((frame.len() / 2).max(1));
                stream.write_all(&frame)?;
                stream.flush().ok();
                drop(stream);
                Err(chaos_io_error("connection dropped mid-frame"))
            }
            FaultAction::DuplicateFrame => {
                // The same frame arrives twice on one connection; the reply to
                // the first copy is the authoritative one, the second is
                // drained (a deduplicating server replays or rejects it).
                write_message_pooled(&mut stream, request, &self.pool)?;
                write_message_pooled(&mut stream, request, &self.pool)?;
                let first = read_message_pooled(&mut stream, &self.pool, DEFAULT_MAX_FRAME)?;
                let _ = read_message_pooled(&mut stream, &self.pool, DEFAULT_MAX_FRAME);
                Ok(first)
            }
            FaultAction::DropAfterSend => {
                // The full request reaches the wire — the server WILL process
                // it — but the connection dies before the reply. Only the
                // dedup nonce lets a retry of this checkin stay idempotent.
                write_message_pooled(&mut stream, request, &self.pool)?;
                drop(stream);
                Err(chaos_io_error("connection dropped after send"))
            }
            _ => {
                write_message_pooled(&mut stream, request, &self.pool)?;
                Ok(read_message_pooled(
                    &mut stream,
                    &self.pool,
                    DEFAULT_MAX_FRAME,
                )?)
            }
        }
    }

    /// One request/reply exchange, transparently retrying "server busy"
    /// backpressure replies (either a dedicated `Busy` message or an
    /// `ErrorReply` with the retryable [`ErrorCode::Busy`]) with backoff.
    ///
    /// [`ErrorCode::Busy`]: crowd_proto::message::ErrorCode::Busy
    fn exchange(&self, request: &Message) -> Result<Message> {
        self.exchange_policy(request, false)
    }

    /// Like [`DeviceClient::exchange`], but additionally retries transient
    /// transport failures. Only safe for idempotent requests: checkouts
    /// (reads) and checkins carrying a dedup nonce (the server replays the
    /// original ack if the first attempt was actually applied).
    fn exchange_idempotent(&self, request: &Message) -> Result<Message> {
        self.exchange_policy(request, true)
    }

    fn exchange_policy(&self, request: &Message, retry_transport: bool) -> Result<Message> {
        let mut failures = 0u32;
        loop {
            let reply = match self.exchange_once(request) {
                Ok(reply) => reply,
                Err(e) if retry_transport && is_transient_transport(&e) => {
                    // The request may or may not have been applied server-side;
                    // idempotence (checkout = read, checkin = dedup nonce)
                    // makes the blind retry safe.
                    failures += 1;
                    if failures >= self.retry.max_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.retry.backoff(failures - 1, 0));
                    continue;
                }
                Err(e) => return Err(e),
            };
            let hint_ms = match &reply {
                Message::Busy(b) => b.retry_after_ms,
                Message::Error(e) if e.code.is_retryable() => 0,
                _ => return Ok(reply),
            };
            failures += 1;
            if failures >= self.retry.max_attempts {
                return Err(NetError::ServerError {
                    code: crowd_proto::message::ErrorCode::Busy,
                    detail: format!("server still busy after {failures} attempts"),
                });
            }
            std::thread::sleep(self.retry.backoff(failures - 1, hint_ms));
        }
    }

    /// Checks out the current parameters from the server (Fig. 2, steps 2–3).
    /// A checkout is a read, hence idempotent: transient transport failures
    /// are retried under the client's policy.
    pub fn checkout(&self) -> Result<CheckedOutParams> {
        let reply = self.exchange_idempotent(&Message::CheckoutRequest(CheckoutRequest {
            version: PROTOCOL_VERSION,
            device_id: self.device_id,
            token: self.token,
        }))?;
        match reply {
            Message::CheckoutResponse(r) => Ok(CheckedOutParams {
                iteration: r.iteration,
                params: Vector::from_vec(r.params),
                stopped: r.stopped,
                round: r.round,
            }),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkout_response",
                received: other.name(),
            }),
        }
    }

    /// Scrapes the server's metric registry over the wire (the `crowd-scope`
    /// observability surface, wire v4). A scrape is a read authenticated
    /// exactly like a checkout, hence idempotent: transient transport
    /// failures are retried under the client's policy.
    pub fn scrape_metrics(&self) -> Result<MetricsReport> {
        let reply = self.exchange_idempotent(&Message::MetricsRequest(MetricsRequest {
            version: PROTOCOL_VERSION,
            device_id: self.device_id,
            token: self.token,
        }))?;
        match reply {
            Message::MetricsReport(report) => Ok(report),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "metrics_report",
                received: other.name(),
            }),
        }
    }

    /// Checks in a sanitized payload (Fig. 2, steps 4–5) as an ordinary
    /// free-running (round-untagged) checkin, returning the typed
    /// [`CheckinOutcome`].
    ///
    /// A payload carrying a dedup nonce is retried through transient transport
    /// failures: even if an earlier attempt was applied server-side, the
    /// server recognizes the nonce and replays the original acknowledgement
    /// instead of applying the gradient (and charging the ε ledger) twice.
    /// Nonce-less payloads keep the conservative behaviour — a transport
    /// failure is reported to the caller, because a blind retry could
    /// double-apply.
    pub fn checkin(&self, payload: &CheckinPayload) -> Result<CheckinOutcome> {
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: self.device_id,
            token: self.token,
            checkout_iteration: payload.checkout_iteration,
            nonce: payload.nonce,
            round_id: 0,
            gradient: wire_gradient(&payload.gradient),
            num_samples: payload.num_samples as u32,
            error_count: payload.error_count,
            label_counts: payload.label_counts.clone(),
        });
        let reply = if payload.nonce != 0 {
            self.exchange_idempotent(&request)?
        } else {
            self.exchange(&request)?
        };
        checkin_outcome(reply)
    }

    /// Joins the server's current round (wire v6): one checkout both reads
    /// the model parameters and the published [`RoundParams`], from which the
    /// device derives its [`Role`] and cohort — no extra coordination
    /// messages. Errors with [`NetError::Round`] when the server runs free.
    pub fn join_round(&self) -> Result<RoundSession> {
        let checked_out = self.checkout()?;
        let round = checked_out
            .round
            .ok_or(NetError::Round("the server is not running rounds"))?;
        let cohort = crowd_rounds::cohort(round.seed, round.population, round.select_fraction);
        let role = if cohort.binary_search(&self.device_id).is_ok() {
            Role::Selected
        } else {
            Role::Unselected
        };
        Ok(RoundSession {
            client: self.clone(),
            round,
            checked_out,
            role,
            cohort,
        })
    }

    /// Checks in several buffered minibatches per frame (the `BatchCheckin`
    /// message), amortizing connection and framing overhead for co-located
    /// payloads. Batches larger than the codec's [`MAX_BATCH_ITEMS`] decode cap
    /// are split across frames transparently. Returns one positional
    /// acknowledgement per payload.
    ///
    /// [`MAX_BATCH_ITEMS`]: crowd_proto::codec::MAX_BATCH_ITEMS
    pub fn checkin_batch(&self, payloads: &[CheckinPayload]) -> Result<Vec<BatchAck>> {
        let mut acks = Vec::with_capacity(payloads.len());
        for chunk in payloads.chunks(crowd_proto::codec::MAX_BATCH_ITEMS) {
            let items: Vec<CheckinRequest> = chunk
                .iter()
                .map(|payload| CheckinRequest {
                    device_id: self.device_id,
                    token: self.token,
                    checkout_iteration: payload.checkout_iteration,
                    nonce: payload.nonce,
                    round_id: 0,
                    gradient: wire_gradient(&payload.gradient),
                    num_samples: payload.num_samples as u32,
                    error_count: payload.error_count,
                    label_counts: payload.label_counts.clone(),
                })
                .collect();
            let mut chunk_acks = self.batch_exchange(items.clone())?;
            // Backpressure inside a batch reply arrives per item
            // (reject = Busy), not as a whole-message Busy that `exchange`
            // would retry — resend just the rejected items under the same
            // retry policy so they are not silently dropped.
            let mut failures = 0u32;
            loop {
                let busy: Vec<usize> = chunk_acks
                    .iter()
                    .enumerate()
                    .filter(|(_, ack)| ack.reject == Some(ErrorCode::Busy))
                    .map(|(i, _)| i)
                    .collect();
                if busy.is_empty() {
                    break;
                }
                failures += 1;
                if failures >= self.retry.max_attempts {
                    // Out of retries: the Busy rejections are reported to the
                    // caller in the acks rather than swallowed.
                    break;
                }
                std::thread::sleep(self.retry.backoff(failures - 1, 0));
                let retry_items: Vec<CheckinRequest> =
                    busy.iter().map(|&i| items[i].clone()).collect();
                let retry_acks = self.batch_exchange(retry_items)?;
                for (slot, ack) in busy.into_iter().zip(retry_acks) {
                    chunk_acks[slot] = ack;
                }
            }
            acks.extend(chunk_acks);
        }
        Ok(acks)
    }

    /// One batch-checkin frame exchange, validated to return exactly one ack
    /// per item.
    fn batch_exchange(&self, items: Vec<CheckinRequest>) -> Result<Vec<BatchAck>> {
        let expected = items.len();
        // The whole frame is idempotent iff every item is individually
        // deduplicable.
        let idempotent = items.iter().all(|item| item.nonce != 0);
        let request = Message::BatchCheckinRequest(BatchCheckinRequest { items });
        let reply = if idempotent {
            self.exchange_idempotent(&request)?
        } else {
            self.exchange(&request)?
        };
        match reply {
            Message::BatchCheckinAck(ack) => {
                if ack.acks.len() != expected {
                    return Err(NetError::UnexpectedMessage {
                        expected: "one ack per batch item",
                        received: "mismatched batch ack",
                    });
                }
                Ok(ack.acks)
            }
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "batch_checkin_ack",
                received: other.name(),
            }),
        }
    }

    /// Runs the full device loop over a local data stream: buffer samples, check
    /// out when the minibatch fills, compute and sanitize the statistics, check in,
    /// and stop when the stream is exhausted or the server reports the task ended.
    pub fn run_task<M: Model + ?Sized, R: Rng + ?Sized>(
        &self,
        model: &M,
        local_data: &Dataset,
        device_config: DeviceConfig,
        privacy: PrivacyConfig,
        lambda: f64,
        rng: &mut R,
    ) -> Result<DeviceReport> {
        let mut device = Device::new(self.device_id, device_config, privacy)?;
        let mut report = DeviceReport::default();
        for sample in local_data.iter() {
            report.samples_observed += 1;
            let action = device.observe(sample.clone());
            if action != DeviceAction::RequestCheckout {
                continue;
            }
            device.begin_checkout()?;
            let checked_out = match self.checkout() {
                Ok(c) => c,
                Err(e) => {
                    device.abort_checkout();
                    // The server refusing to query this device further is a
                    // normal end of participation, not a failure.
                    if matches!(
                        e,
                        NetError::ServerError {
                            code: crowd_proto::message::ErrorCode::BudgetExhausted,
                            ..
                        }
                    ) {
                        report.budget_exhausted = true;
                        break;
                    }
                    // Remark 1: a failed checkout is non-critical — keep the buffer
                    // and retry on a later sample.
                    if matches!(e, NetError::ServerError { .. }) {
                        return Err(e);
                    }
                    continue;
                }
            };
            if checked_out.stopped {
                report.stopped_by_server = true;
                break;
            }
            let payload = device.compute_checkin(
                model,
                &checked_out.params,
                checked_out.iteration,
                lambda,
                rng,
            )?;
            // The payload is already computed, so sustained backpressure is
            // survivable: after `checkin`'s own per-request retries are
            // exhausted, keep resending at the policy's backoff ceiling until
            // the server has queue capacity again. Only a persistently wedged
            // server (~200 rounds) makes a device give the minibatch up.
            let mut busy_rounds = 0u32;
            loop {
                match self.checkin(&payload) {
                    // Budget exhaustion ends participation gracefully; the
                    // rejected minibatch is simply lost.
                    Ok(CheckinOutcome::BudgetExhausted) => {
                        report.budget_exhausted = true;
                        break;
                    }
                    // Free-run checkins are round-untagged, so this is
                    // unreachable here; a lost minibatch is the safe reading.
                    Ok(CheckinOutcome::RoundOutdated { .. }) => break,
                    Ok(outcome) => {
                        report.checkins += 1;
                        if outcome.task_stopped() {
                            report.stopped_by_server = true;
                        }
                        break;
                    }
                    Err(NetError::ServerError { code, detail }) => {
                        if code.is_retryable() && busy_rounds < 200 {
                            busy_rounds += 1;
                            std::thread::sleep(
                                self.retry.max_backoff.max(Duration::from_millis(1)),
                            );
                            continue;
                        }
                        return Err(NetError::ServerError { code, detail });
                    }
                    Err(_) => {
                        // Transport failure on checkin is likewise non-critical;
                        // the minibatch is simply lost (the buffer was already
                        // cleared).
                        break;
                    }
                }
            }
            if report.stopped_by_server || report.budget_exhausted {
                break;
            }
        }
        Ok(report)
    }
}

/// A device's typed view of one aggregation round (wire v6), produced by
/// [`DeviceClient::join_round`].
///
/// The session snapshots the checkout (model parameters + round parameters)
/// and the role derived from the round seed. A `Selected` device submits
/// exactly one masked contribution via [`RoundSession::submit`]; an
/// `Unselected` one free-runs ordinary [`DeviceClient::checkin`]s until the
/// next round. When a submit comes back [`CheckinOutcome::RoundOutdated`],
/// the round closed mid-computation — [`RoundSession::resync`] joins the
/// current one (non-fatal by design).
#[derive(Debug, Clone)]
pub struct RoundSession {
    client: DeviceClient,
    round: RoundParams,
    checked_out: CheckedOutParams,
    role: Role,
    /// Ascending cohort ids, derived from the round seed like every party
    /// derives them.
    cohort: Vec<u64>,
}

impl RoundSession {
    /// This device's role in the joined round.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The joined round's id.
    pub fn round_id(&self) -> u64 {
        self.round.round_id
    }

    /// The round parameters as published by the server.
    pub fn round(&self) -> RoundParams {
        self.round
    }

    /// The checkout this session was created from (model parameters).
    pub fn checked_out(&self) -> &CheckedOutParams {
        &self.checked_out
    }

    /// The round's cohort (ascending device ids).
    pub fn cohort(&self) -> &[u64] {
        &self.cohort
    }

    /// Submits this round's masked contribution (`Selected` role only): the
    /// payload gradient is densified and each coordinate's IEEE-754 bits get
    /// the device's seed-derived pairwise net mask added (wrapping), so the
    /// raw gradient never crosses the wire and the masks cancel exactly in
    /// the finalized cohort sum. Retried through transport faults when the
    /// payload carries a dedup nonce, like [`DeviceClient::checkin`].
    pub fn submit(&self, payload: &CheckinPayload) -> Result<CheckinOutcome> {
        if self.role != Role::Selected {
            return Err(NetError::Round("only a selected device submits to a round"));
        }
        let dense = payload.gradient.to_dense();
        let mask_words = crowd_rounds::net_mask(
            self.round.seed,
            self.client.device_id,
            &self.cohort,
            dense.len(),
        );
        let words = crowd_rounds::mask(dense.as_slice(), &mask_words);
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: self.client.device_id,
            token: self.client.token,
            checkout_iteration: payload.checkout_iteration,
            nonce: payload.nonce,
            round_id: self.round.round_id,
            gradient: GradientPayload::Masked { words },
            num_samples: payload.num_samples as u32,
            error_count: payload.error_count,
            label_counts: payload.label_counts.clone(),
        });
        let reply = if payload.nonce != 0 {
            self.client.exchange_idempotent(&request)?
        } else {
            self.client.exchange(&request)?
        };
        checkin_outcome(reply)
    }

    /// Rejoins the server's *current* round after a
    /// [`CheckinOutcome::RoundOutdated`]: one fresh checkout, a newly derived
    /// role.
    pub fn resync(&self) -> Result<RoundSession> {
        self.client.join_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NetServer;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use crowd_proto::auth::TokenRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkout_and_checkin_against_live_server() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::builder(handle.addr(), 1, AuthToken::derive(1, 5)).build();
        assert_eq!(client.device_id(), 1);

        let checked_out = client.checkout().unwrap();
        assert_eq!(checked_out.iteration, 0);
        assert_eq!(checked_out.params.len(), 6);
        // A free-running server publishes no round parameters.
        assert_eq!(checked_out.round, None);

        let payload = crowd_core::device::CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::from_vec(vec![0.1; 6]).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let outcome = client.checkin(&payload).unwrap();
        assert_eq!(outcome, CheckinOutcome::Applied { iteration: 1 });
        assert!(outcome.applied());
        assert!(!outcome.task_stopped());
        assert_eq!(handle.iteration(), 1);
        handle.shutdown();
    }

    #[test]
    fn batch_checkin_amortizes_framing() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::builder(handle.addr(), 1, AuthToken::derive(1, 5)).build();
        let payloads: Vec<crowd_core::device::CheckinPayload> = (0..3)
            .map(|i| crowd_core::device::CheckinPayload {
                device_id: 1,
                checkout_iteration: i,
                nonce: 0,
                gradient: Vector::from_vec(vec![0.1; 6]).into(),
                num_samples: 2,
                error_count: 0,
                label_counts: vec![1, 1],
            })
            .collect();
        let acks = client.checkin_batch(&payloads).unwrap();
        assert_eq!(acks.len(), 3);
        assert!(acks
            .iter()
            .all(|a| a.accepted && !a.deduped && a.reject.is_none()));
        assert_eq!(handle.iteration(), 3);
        assert_eq!(handle.total_samples(), 6);
        handle.shutdown();
    }

    #[test]
    fn retry_policy_backoff_honors_hint_and_cap() {
        let policy = RetryPolicy::new();
        // Scheduled backoff doubles from the base and saturates at the cap.
        assert_eq!(policy.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(policy.backoff(3, 0), Duration::from_millis(8));
        assert_eq!(policy.backoff(16, 0), Duration::from_millis(50));
        // A larger server hint wins over the local schedule.
        assert_eq!(policy.backoff(0, 30), Duration::from_millis(30));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    /// Regression (chaos satellite): an I/O failure on a checkin whose request
    /// DID reach the server used to be fatal for the minibatch — the client
    /// could not safely retry because a blind resend would double-apply. With
    /// the dedup nonce the retry is idempotent: the server recognizes the
    /// nonce, replays the original ack, and applies (and ε-charges) exactly
    /// once.
    #[test]
    fn retried_checkin_after_send_failure_applies_exactly_once() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let config = ServerConfig::new().with_budget(0.25, f64::INFINITY);
        let handle = NetServer::start(model, config, tokens).unwrap();
        let client = DeviceClient::builder(handle.addr(), 1, AuthToken::derive(1, 5)).build();
        let payload = crowd_core::device::CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            nonce: 42,
            gradient: Vector::from_vec(vec![0.1; 6]).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: 1,
            token: AuthToken::derive(1, 5),
            checkout_iteration: 0,
            nonce: payload.nonce,
            round_id: 0,
            gradient: wire_gradient(&payload.gradient),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        });
        // The connection dies right after the full frame was sent: the server
        // processes the checkin, the client sees only an I/O error.
        let err = client
            .exchange_once_with(&request, FaultAction::DropAfterSend)
            .unwrap_err();
        assert!(is_transient_transport(&err));
        // Wait for the server to absorb the orphaned frame.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.iteration() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "server never applied the orphaned checkin"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // The retry (same nonce) resolves as a dedup replay — recognized,
        // counted as applied, and NOT applied a second time.
        let outcome = client.checkin(&payload).unwrap();
        assert_eq!(outcome, CheckinOutcome::Deduped);
        assert!(outcome.applied());
        assert_eq!(handle.iteration(), 1, "duplicate applied twice");
        assert_eq!(handle.total_samples(), 2);
        // Charged once, not twice.
        assert_eq!(handle.budget_ledger(), vec![(1, 0.25)]);
        assert!(handle.runtime_stats().get("dedup_replays") >= 1);
        handle.shutdown();
    }

    #[test]
    fn transport_faults_are_absorbed_by_idempotent_retries() {
        // Every scripted fault kind, in sequence, against a live server: the
        // client's retry + the server's dedup must deliver exactly-once
        // semantics for all of them.
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::builder(handle.addr(), 1, AuthToken::derive(1, 5)).build();
        let actions = [
            FaultAction::DropBeforeSend,
            FaultAction::TruncateFrame,
            FaultAction::DropAfterSend,
        ];
        for (i, &action) in actions.iter().enumerate() {
            let nonce = 100 + i as u64;
            let request = Message::CheckinRequest(CheckinRequest {
                device_id: 1,
                token: AuthToken::derive(1, 5),
                checkout_iteration: 0,
                nonce,
                round_id: 0,
                gradient: GradientPayload::Dense(vec![0.1; 6]),
                num_samples: 1,
                error_count: 0,
                label_counts: vec![1, 0],
            });
            assert!(client.exchange_once_with(&request, action).is_err());
            // Retry until the ack arrives (an in-flight original replies Busy
            // for a moment; the exchange layer absorbs that).
            let reply = client.exchange_idempotent(&request).unwrap();
            assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted));
        }
        // A duplicated frame resolves to one application as well.
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: 1,
            token: AuthToken::derive(1, 5),
            checkout_iteration: 0,
            nonce: 200,
            round_id: 0,
            gradient: GradientPayload::Dense(vec![0.1; 6]),
            num_samples: 1,
            error_count: 0,
            label_counts: vec![1, 0],
        });
        let reply = client
            .exchange_once_with(&request, FaultAction::DuplicateFrame)
            .unwrap();
        assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted));
        // 3 faulted-then-retried + 1 duplicated = exactly 4 applications
        // (DropBeforeSend and TruncateFrame never reached the server, their
        // retries were the only copies; DropAfterSend applied once and its
        // retry was replayed).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.iteration() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.iteration(), 4);
        assert_eq!(handle.total_samples(), 4);
        handle.shutdown();
    }

    #[test]
    fn unauthorized_client_gets_server_error() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let bad = DeviceClient::builder(handle.addr(), 0, AuthToken::derive(0, 999)).build();
        match bad.checkout() {
            Err(NetError::ServerError { .. }) => {}
            other => panic!("expected ServerError, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn round_session_masks_submissions_and_resyncs_when_stale() {
        use crowd_core::config::RoundSettings;
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let config = ServerConfig::new().with_rounds(
            RoundSettings::new(2)
                .with_select_fraction(1.0)
                .with_deadline_epochs(100),
        );
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, config, tokens).unwrap();
        let clients: Vec<DeviceClient> = (0..2)
            .map(|d| DeviceClient::builder(handle.addr(), d, AuthToken::derive(d, 5)).build())
            .collect();

        let sessions: Vec<RoundSession> = clients.iter().map(|c| c.join_round().unwrap()).collect();
        assert!(sessions
            .iter()
            .all(|s| s.round_id() == 1 && s.role() == Role::Selected));
        assert_eq!(sessions[0].cohort(), &[0, 1]);

        let payload = |d: u64| crowd_core::device::CheckinPayload {
            device_id: d,
            checkout_iteration: 0,
            nonce: 900 + d,
            gradient: Vector::from_vec(vec![0.5 - d as f64, 0.25, -0.125, 1.0, 0.0, -2.0]).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        // The first submission is held pending (acked, nothing applied yet).
        let first = sessions[0].submit(&payload(0)).unwrap();
        assert_eq!(first, CheckinOutcome::Applied { iteration: 0 });
        assert_eq!(handle.iteration(), 0);
        // The cohort's last submission completes the round: the masks cancel
        // and the finalized sum applies as one epoch.
        let second = sessions[1].submit(&payload(1)).unwrap();
        assert_eq!(second, CheckinOutcome::Applied { iteration: 0 });
        assert_eq!(handle.iteration(), 1);
        // A retry of a settled submission (same nonce) replays, not re-applies.
        assert_eq!(
            sessions[1].submit(&payload(1)).unwrap(),
            CheckinOutcome::Deduped
        );
        assert_eq!(handle.iteration(), 1);
        // A *fresh* submission against the closed round is outdated — the
        // reply names the current round and `resync` rejoins it.
        let mut stale = payload(0);
        stale.nonce = 777;
        assert_eq!(
            sessions[0].submit(&stale).unwrap(),
            CheckinOutcome::RoundOutdated { current_round: 2 }
        );
        let resynced = sessions[0].resync().unwrap();
        assert_eq!(resynced.round_id(), 2);
        assert_eq!(resynced.checked_out().iteration, 1);
        handle.shutdown();
    }

    #[test]
    fn join_round_on_a_free_running_server_is_a_protocol_error() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::builder(handle.addr(), 0, AuthToken::derive(0, 5)).build();
        match client.join_round() {
            Err(NetError::Round(_)) => {}
            other => panic!("expected NetError::Round, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn run_task_trains_the_server_model() {
        use crowd_data::synthetic::GaussianMixtureSpec;
        let mut rng = StdRng::seed_from_u64(0);
        let (train, _test) = GaussianMixtureSpec::new(6, 3)
            .with_train_size(60)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 7);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::builder(handle.addr(), 0, AuthToken::derive(0, 7)).build();
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let report = client
            .run_task(
                &model,
                &train,
                DeviceConfig::new(5),
                PrivacyConfig::non_private(),
                0.0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(report.samples_observed, 60);
        assert_eq!(report.checkins, 12);
        assert_eq!(handle.iteration(), 12);
        assert_eq!(handle.total_samples(), 60);
        handle.shutdown();
    }
}
