//! Device-side TCP client running Device Routines 1–3 against a remote server.

use crate::error::NetError;
use crate::Result;
use crowd_core::config::{DeviceConfig, PrivacyConfig};
use crowd_core::device::{Device, DeviceAction};
use crowd_data::Dataset;
use crowd_learning::model::Model;
use crowd_linalg::{GradientUpdate, Vector};
use crowd_proto::frame::{read_message_pooled, write_message_pooled, DEFAULT_MAX_FRAME};
use crowd_proto::message::{
    BatchAck, BatchCheckinRequest, CheckinRequest, CheckoutRequest, GradientPayload, Message,
    MetricsReport, MetricsRequest,
};
use crowd_proto::{AuthToken, BufPool, PROTOCOL_VERSION};
use crowd_sim::chaos::{FaultAction, TransportFaults};
use rand::Rng;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded retry-with-backoff policy for "server busy" backpressure replies.
///
/// The aggregation runtime sheds load by rejecting checkins when its ingest
/// queue is full; those rejections are transient by design, so the client
/// retries them transparently with exponential backoff, preferring the server's
/// own retry-after hint over the local schedule when one is provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry k (1-based) is `base_backoff · 2^(k-1)`, capped.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Default policy: 5 attempts, 1 ms base backoff, 50 ms cap.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry attempt `attempt` (0-based count of failures so
    /// far), honoring the server's retry-after hint when present.
    fn backoff(&self, attempt: u32, hint_ms: u32) -> Duration {
        let scheduled = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        scheduled.max(Duration::from_millis(hint_ms as u64))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// Maps a device's gradient representation onto the wire encoding without
/// densifying: a sparse update ships only its stored coordinates, and a
/// quantized update ships its `i16` levels plus the shared scale.
fn wire_gradient(gradient: &GradientUpdate) -> GradientPayload {
    match gradient {
        GradientUpdate::Dense(v) => GradientPayload::Dense(v.as_slice().to_vec()),
        GradientUpdate::Sparse(s) => GradientPayload::Sparse {
            dim: s.dim() as u32,
            indices: s.indices().to_vec(),
            values: s.values().to_vec(),
        },
        GradientUpdate::Quantized(q) => GradientPayload::Quantized {
            scale: q.scale(),
            levels: q.levels().to_vec(),
        },
    }
}

/// A device's view of a checkout: the parameters and the server iteration they
/// were read at.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedOutParams {
    /// Server iteration at checkout time.
    pub iteration: u64,
    /// The parameter vector.
    pub params: Vector,
    /// Whether the server reports the task as stopped.
    pub stopped: bool,
}

/// Summary of one device's participation in a networked task.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceReport {
    /// Samples observed by the device.
    pub samples_observed: u64,
    /// Checkins successfully acknowledged by the server.
    pub checkins: u64,
    /// Whether the device stopped because the server reported the task ended.
    pub stopped_by_server: bool,
    /// Whether the device stopped because the server refused to query it
    /// further (its ε budget is spent).
    pub budget_exhausted: bool,
}

/// A TCP client for one device.
#[derive(Debug, Clone)]
pub struct DeviceClient {
    addr: SocketAddr,
    device_id: u64,
    token: AuthToken,
    retry: RetryPolicy,
    /// Reused frame buffers (shared across clones, e.g. a gateway's workers).
    pool: Arc<BufPool>,
    /// Optional seeded transport-fault shim (chaos testing): decides per wire
    /// exchange whether the frame is dropped, delayed, duplicated, or
    /// truncated. `None` = a faithful transport.
    faults: Option<Arc<TransportFaults>>,
    /// Monotonic wire-exchange counter feeding the fault shim (shared across
    /// clones and [`DeviceClient::with_addr`] reconnects, so the fault
    /// schedule continues instead of restarting).
    ops: Arc<AtomicU64>,
}

/// A transport failure injected by the chaos shim (or suffered for real);
/// indistinguishable from a genuine socket error by design.
fn chaos_io_error(detail: &str) -> NetError {
    NetError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        format!("chaos: {detail}"),
    ))
}

/// `true` for failures worth retrying on an idempotent request: the socket
/// died somewhere between connect and reply, so the server may or may not
/// have processed the request.
fn is_transient_transport(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Io(_) | NetError::Proto(crowd_proto::ProtoError::Io(_))
    )
}

impl DeviceClient {
    /// Creates a client for `device_id` talking to the server at `addr`, with
    /// the default busy-retry policy.
    pub fn new(addr: SocketAddr, device_id: u64, token: AuthToken) -> Self {
        DeviceClient {
            addr,
            device_id,
            token,
            retry: RetryPolicy::new(),
            pool: Arc::new(BufPool::default()),
            faults: None,
            ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the busy-retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a seeded transport-fault shim: every wire exchange consults it
    /// and may be dropped, delayed, duplicated, or truncated. The client's
    /// retry and dedup machinery must absorb whatever it injects.
    pub fn with_transport_faults(mut self, faults: Arc<TransportFaults>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Re-targets the client at a new address (a restarted server on a fresh
    /// ephemeral port), keeping the fault-shim schedule and buffer pool.
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// The device id this client authenticates as.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    fn exchange_once(&self, request: &Message) -> Result<Message> {
        let action = match &self.faults {
            Some(faults) => faults.decide(self.device_id, self.ops.fetch_add(1, Ordering::Relaxed)),
            None => FaultAction::None,
        };
        self.exchange_once_with(request, action)
    }

    /// One wire exchange under an explicit fault decision.
    fn exchange_once_with(&self, request: &Message, action: FaultAction) -> Result<Message> {
        if let FaultAction::DelaySend { ms } = action {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if action == FaultAction::DropBeforeSend {
            // The server never sees the request: safe to retry blindly.
            return Err(chaos_io_error("connection dropped before send"));
        }
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        match action {
            FaultAction::TruncateFrame => {
                // Transmit a strict prefix of the frame and hang up: the
                // server must discard the partial frame, the client must treat
                // the upload as unconfirmed. The frame bytes come from the
                // canonical framing layer (written into a Vec), so the fault
                // always truncates a genuine frame, whatever the layout.
                use std::io::Write;
                let mut frame = Vec::new();
                crowd_proto::frame::write_message(&mut frame, request)?;
                frame.truncate((frame.len() / 2).max(1));
                stream.write_all(&frame)?;
                stream.flush().ok();
                drop(stream);
                Err(chaos_io_error("connection dropped mid-frame"))
            }
            FaultAction::DuplicateFrame => {
                // The same frame arrives twice on one connection; the reply to
                // the first copy is the authoritative one, the second is
                // drained (a deduplicating server replays or rejects it).
                write_message_pooled(&mut stream, request, &self.pool)?;
                write_message_pooled(&mut stream, request, &self.pool)?;
                let first = read_message_pooled(&mut stream, &self.pool, DEFAULT_MAX_FRAME)?;
                let _ = read_message_pooled(&mut stream, &self.pool, DEFAULT_MAX_FRAME);
                Ok(first)
            }
            FaultAction::DropAfterSend => {
                // The full request reaches the wire — the server WILL process
                // it — but the connection dies before the reply. Only the
                // dedup nonce lets a retry of this checkin stay idempotent.
                write_message_pooled(&mut stream, request, &self.pool)?;
                drop(stream);
                Err(chaos_io_error("connection dropped after send"))
            }
            _ => {
                write_message_pooled(&mut stream, request, &self.pool)?;
                Ok(read_message_pooled(
                    &mut stream,
                    &self.pool,
                    DEFAULT_MAX_FRAME,
                )?)
            }
        }
    }

    /// One request/reply exchange, transparently retrying "server busy"
    /// backpressure replies (either a dedicated `Busy` message or an
    /// `ErrorReply` with the retryable [`ErrorCode::Busy`]) with backoff.
    ///
    /// [`ErrorCode::Busy`]: crowd_proto::message::ErrorCode::Busy
    fn exchange(&self, request: &Message) -> Result<Message> {
        self.exchange_policy(request, false)
    }

    /// Like [`DeviceClient::exchange`], but additionally retries transient
    /// transport failures. Only safe for idempotent requests: checkouts
    /// (reads) and checkins carrying a dedup nonce (the server replays the
    /// original ack if the first attempt was actually applied).
    fn exchange_idempotent(&self, request: &Message) -> Result<Message> {
        self.exchange_policy(request, true)
    }

    fn exchange_policy(&self, request: &Message, retry_transport: bool) -> Result<Message> {
        let mut failures = 0u32;
        loop {
            let reply = match self.exchange_once(request) {
                Ok(reply) => reply,
                Err(e) if retry_transport && is_transient_transport(&e) => {
                    // The request may or may not have been applied server-side;
                    // idempotence (checkout = read, checkin = dedup nonce)
                    // makes the blind retry safe.
                    failures += 1;
                    if failures >= self.retry.max_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.retry.backoff(failures - 1, 0));
                    continue;
                }
                Err(e) => return Err(e),
            };
            let hint_ms = match &reply {
                Message::Busy(b) => b.retry_after_ms,
                Message::Error(e) if e.code.is_retryable() => 0,
                _ => return Ok(reply),
            };
            failures += 1;
            if failures >= self.retry.max_attempts {
                return Err(NetError::ServerError {
                    code: crowd_proto::message::ErrorCode::Busy,
                    detail: format!("server still busy after {failures} attempts"),
                });
            }
            std::thread::sleep(self.retry.backoff(failures - 1, hint_ms));
        }
    }

    /// Checks out the current parameters from the server (Fig. 2, steps 2–3).
    /// A checkout is a read, hence idempotent: transient transport failures
    /// are retried under the client's policy.
    pub fn checkout(&self) -> Result<CheckedOutParams> {
        let reply = self.exchange_idempotent(&Message::CheckoutRequest(CheckoutRequest {
            version: PROTOCOL_VERSION,
            device_id: self.device_id,
            token: self.token,
        }))?;
        match reply {
            Message::CheckoutResponse(r) => Ok(CheckedOutParams {
                iteration: r.iteration,
                params: Vector::from_vec(r.params),
                stopped: r.stopped,
            }),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkout_response",
                received: other.name(),
            }),
        }
    }

    /// Scrapes the server's metric registry over the wire (the `crowd-scope`
    /// observability surface, wire v4). A scrape is a read authenticated
    /// exactly like a checkout, hence idempotent: transient transport
    /// failures are retried under the client's policy.
    pub fn scrape_metrics(&self) -> Result<MetricsReport> {
        let reply = self.exchange_idempotent(&Message::MetricsRequest(MetricsRequest {
            version: PROTOCOL_VERSION,
            device_id: self.device_id,
            token: self.token,
        }))?;
        match reply {
            Message::MetricsReport(report) => Ok(report),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "metrics_report",
                received: other.name(),
            }),
        }
    }

    /// Checks in a sanitized payload (Fig. 2, steps 4–5). Returns
    /// `(accepted, stopped)`.
    ///
    /// A payload carrying a dedup nonce is retried through transient transport
    /// failures: even if an earlier attempt was applied server-side, the
    /// server recognizes the nonce and replays the original acknowledgement
    /// instead of applying the gradient (and charging the ε ledger) twice.
    /// Nonce-less payloads keep the conservative behaviour — a transport
    /// failure is reported to the caller, because a blind retry could
    /// double-apply.
    pub fn checkin(&self, payload: &crowd_core::device::CheckinPayload) -> Result<(bool, bool)> {
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: self.device_id,
            token: self.token,
            checkout_iteration: payload.checkout_iteration,
            nonce: payload.nonce,
            gradient: wire_gradient(&payload.gradient),
            num_samples: payload.num_samples as u32,
            error_count: payload.error_count,
            label_counts: payload.label_counts.clone(),
        });
        let reply = if payload.nonce != 0 {
            self.exchange_idempotent(&request)?
        } else {
            self.exchange(&request)?
        };
        match reply {
            Message::CheckinAck(ack) => Ok((ack.accepted, ack.stopped)),
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "checkin_ack",
                received: other.name(),
            }),
        }
    }

    /// Checks in several buffered minibatches per frame (the `BatchCheckin`
    /// message), amortizing connection and framing overhead for co-located
    /// payloads. Batches larger than the codec's [`MAX_BATCH_ITEMS`] decode cap
    /// are split across frames transparently. Returns one positional
    /// acknowledgement per payload.
    ///
    /// [`MAX_BATCH_ITEMS`]: crowd_proto::codec::MAX_BATCH_ITEMS
    pub fn checkin_batch(
        &self,
        payloads: &[crowd_core::device::CheckinPayload],
    ) -> Result<Vec<BatchAck>> {
        use crowd_proto::message::ErrorCode;
        let mut acks = Vec::with_capacity(payloads.len());
        for chunk in payloads.chunks(crowd_proto::codec::MAX_BATCH_ITEMS) {
            let items: Vec<CheckinRequest> = chunk
                .iter()
                .map(|payload| CheckinRequest {
                    device_id: self.device_id,
                    token: self.token,
                    checkout_iteration: payload.checkout_iteration,
                    nonce: payload.nonce,
                    gradient: wire_gradient(&payload.gradient),
                    num_samples: payload.num_samples as u32,
                    error_count: payload.error_count,
                    label_counts: payload.label_counts.clone(),
                })
                .collect();
            let mut chunk_acks = self.batch_exchange(items.clone())?;
            // Backpressure inside a batch reply arrives per item
            // (reject = Busy), not as a whole-message Busy that `exchange`
            // would retry — resend just the rejected items under the same
            // retry policy so they are not silently dropped.
            let mut failures = 0u32;
            loop {
                let busy: Vec<usize> = chunk_acks
                    .iter()
                    .enumerate()
                    .filter(|(_, ack)| ack.reject == Some(ErrorCode::Busy))
                    .map(|(i, _)| i)
                    .collect();
                if busy.is_empty() {
                    break;
                }
                failures += 1;
                if failures >= self.retry.max_attempts {
                    // Out of retries: the Busy rejections are reported to the
                    // caller in the acks rather than swallowed.
                    break;
                }
                std::thread::sleep(self.retry.backoff(failures - 1, 0));
                let retry_items: Vec<CheckinRequest> =
                    busy.iter().map(|&i| items[i].clone()).collect();
                let retry_acks = self.batch_exchange(retry_items)?;
                for (slot, ack) in busy.into_iter().zip(retry_acks) {
                    chunk_acks[slot] = ack;
                }
            }
            acks.extend(chunk_acks);
        }
        Ok(acks)
    }

    /// One batch-checkin frame exchange, validated to return exactly one ack
    /// per item.
    fn batch_exchange(&self, items: Vec<CheckinRequest>) -> Result<Vec<BatchAck>> {
        let expected = items.len();
        // The whole frame is idempotent iff every item is individually
        // deduplicable.
        let idempotent = items.iter().all(|item| item.nonce != 0);
        let request = Message::BatchCheckinRequest(BatchCheckinRequest { items });
        let reply = if idempotent {
            self.exchange_idempotent(&request)?
        } else {
            self.exchange(&request)?
        };
        match reply {
            Message::BatchCheckinAck(ack) => {
                if ack.acks.len() != expected {
                    return Err(NetError::UnexpectedMessage {
                        expected: "one ack per batch item",
                        received: "mismatched batch ack",
                    });
                }
                Ok(ack.acks)
            }
            Message::Error(e) => Err(NetError::ServerError {
                code: e.code,
                detail: e.detail,
            }),
            other => Err(NetError::UnexpectedMessage {
                expected: "batch_checkin_ack",
                received: other.name(),
            }),
        }
    }

    /// Runs the full device loop over a local data stream: buffer samples, check
    /// out when the minibatch fills, compute and sanitize the statistics, check in,
    /// and stop when the stream is exhausted or the server reports the task ended.
    pub fn run_task<M: Model + ?Sized, R: Rng + ?Sized>(
        &self,
        model: &M,
        local_data: &Dataset,
        device_config: DeviceConfig,
        privacy: PrivacyConfig,
        lambda: f64,
        rng: &mut R,
    ) -> Result<DeviceReport> {
        let mut device = Device::new(self.device_id, device_config, privacy)?;
        let mut report = DeviceReport::default();
        for sample in local_data.iter() {
            report.samples_observed += 1;
            let action = device.observe(sample.clone());
            if action != DeviceAction::RequestCheckout {
                continue;
            }
            device.begin_checkout()?;
            let checked_out = match self.checkout() {
                Ok(c) => c,
                Err(e) => {
                    device.abort_checkout();
                    // The server refusing to query this device further is a
                    // normal end of participation, not a failure.
                    if matches!(
                        e,
                        NetError::ServerError {
                            code: crowd_proto::message::ErrorCode::BudgetExhausted,
                            ..
                        }
                    ) {
                        report.budget_exhausted = true;
                        break;
                    }
                    // Remark 1: a failed checkout is non-critical — keep the buffer
                    // and retry on a later sample.
                    if matches!(e, NetError::ServerError { .. }) {
                        return Err(e);
                    }
                    continue;
                }
            };
            if checked_out.stopped {
                report.stopped_by_server = true;
                break;
            }
            let payload = device.compute_checkin(
                model,
                &checked_out.params,
                checked_out.iteration,
                lambda,
                rng,
            )?;
            // The payload is already computed, so sustained backpressure is
            // survivable: after `checkin`'s own per-request retries are
            // exhausted, keep resending at the policy's backoff ceiling until
            // the server has queue capacity again. Only a persistently wedged
            // server (~200 rounds) makes a device give the minibatch up.
            let mut busy_rounds = 0u32;
            loop {
                match self.checkin(&payload) {
                    Ok((_accepted, stopped)) => {
                        report.checkins += 1;
                        if stopped {
                            report.stopped_by_server = true;
                        }
                        break;
                    }
                    Err(NetError::ServerError { code, detail }) => {
                        if code.is_retryable() && busy_rounds < 200 {
                            busy_rounds += 1;
                            std::thread::sleep(
                                self.retry.max_backoff.max(Duration::from_millis(1)),
                            );
                            continue;
                        }
                        // Budget exhaustion ends participation gracefully; the
                        // rejected minibatch is simply lost.
                        if code == crowd_proto::message::ErrorCode::BudgetExhausted {
                            report.budget_exhausted = true;
                            break;
                        }
                        return Err(NetError::ServerError { code, detail });
                    }
                    Err(_) => {
                        // Transport failure on checkin is likewise non-critical;
                        // the minibatch is simply lost (the buffer was already
                        // cleared).
                        break;
                    }
                }
            }
            if report.stopped_by_server || report.budget_exhausted {
                break;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NetServer;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use crowd_proto::auth::TokenRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkout_and_checkin_against_live_server() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        assert_eq!(client.device_id(), 1);

        let checked_out = client.checkout().unwrap();
        assert_eq!(checked_out.iteration, 0);
        assert_eq!(checked_out.params.len(), 6);

        let payload = crowd_core::device::CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::from_vec(vec![0.1; 6]).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let (accepted, stopped) = client.checkin(&payload).unwrap();
        assert!(accepted);
        assert!(!stopped);
        assert_eq!(handle.iteration(), 1);
        handle.shutdown();
    }

    #[test]
    fn batch_checkin_amortizes_framing() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        let payloads: Vec<crowd_core::device::CheckinPayload> = (0..3)
            .map(|i| crowd_core::device::CheckinPayload {
                device_id: 1,
                checkout_iteration: i,
                nonce: 0,
                gradient: Vector::from_vec(vec![0.1; 6]).into(),
                num_samples: 2,
                error_count: 0,
                label_counts: vec![1, 1],
            })
            .collect();
        let acks = client.checkin_batch(&payloads).unwrap();
        assert_eq!(acks.len(), 3);
        assert!(acks.iter().all(|a| a.accepted && a.reject.is_none()));
        assert_eq!(handle.iteration(), 3);
        assert_eq!(handle.total_samples(), 6);
        handle.shutdown();
    }

    #[test]
    fn retry_policy_backoff_honors_hint_and_cap() {
        let policy = RetryPolicy::new();
        // Scheduled backoff doubles from the base and saturates at the cap.
        assert_eq!(policy.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(policy.backoff(3, 0), Duration::from_millis(8));
        assert_eq!(policy.backoff(16, 0), Duration::from_millis(50));
        // A larger server hint wins over the local schedule.
        assert_eq!(policy.backoff(0, 30), Duration::from_millis(30));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    /// Regression (chaos satellite): an I/O failure on a checkin whose request
    /// DID reach the server used to be fatal for the minibatch — the client
    /// could not safely retry because a blind resend would double-apply. With
    /// the dedup nonce the retry is idempotent: the server recognizes the
    /// nonce, replays the original ack, and applies (and ε-charges) exactly
    /// once.
    #[test]
    fn retried_checkin_after_send_failure_applies_exactly_once() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let config = ServerConfig::new().with_budget(0.25, f64::INFINITY);
        let handle = NetServer::start(model, config, tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        let payload = crowd_core::device::CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            nonce: 42,
            gradient: Vector::from_vec(vec![0.1; 6]).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: 1,
            token: AuthToken::derive(1, 5),
            checkout_iteration: 0,
            nonce: payload.nonce,
            gradient: wire_gradient(&payload.gradient),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        });
        // The connection dies right after the full frame was sent: the server
        // processes the checkin, the client sees only an I/O error.
        let err = client
            .exchange_once_with(&request, FaultAction::DropAfterSend)
            .unwrap_err();
        assert!(is_transient_transport(&err));
        // Wait for the server to absorb the orphaned frame.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.iteration() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "server never applied the orphaned checkin"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // The retry (same nonce) succeeds and is NOT applied a second time.
        let (accepted, stopped) = client.checkin(&payload).unwrap();
        assert!(accepted);
        assert!(!stopped);
        assert_eq!(handle.iteration(), 1, "duplicate applied twice");
        assert_eq!(handle.total_samples(), 2);
        // Charged once, not twice.
        assert_eq!(handle.budget_ledger(), vec![(1, 0.25)]);
        assert!(handle.runtime_stats().get("dedup_replays") >= 1);
        handle.shutdown();
    }

    #[test]
    fn transport_faults_are_absorbed_by_idempotent_retries() {
        // Every scripted fault kind, in sequence, against a live server: the
        // client's retry + the server's dedup must deliver exactly-once
        // semantics for all of them.
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(2, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 5));
        let actions = [
            FaultAction::DropBeforeSend,
            FaultAction::TruncateFrame,
            FaultAction::DropAfterSend,
        ];
        for (i, &action) in actions.iter().enumerate() {
            let nonce = 100 + i as u64;
            let request = Message::CheckinRequest(CheckinRequest {
                device_id: 1,
                token: AuthToken::derive(1, 5),
                checkout_iteration: 0,
                nonce,
                gradient: GradientPayload::Dense(vec![0.1; 6]),
                num_samples: 1,
                error_count: 0,
                label_counts: vec![1, 0],
            });
            assert!(client.exchange_once_with(&request, action).is_err());
            // Retry until the ack arrives (an in-flight original replies Busy
            // for a moment; the exchange layer absorbs that).
            let reply = client.exchange_idempotent(&request).unwrap();
            assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted));
        }
        // A duplicated frame resolves to one application as well.
        let request = Message::CheckinRequest(CheckinRequest {
            device_id: 1,
            token: AuthToken::derive(1, 5),
            checkout_iteration: 0,
            nonce: 200,
            gradient: GradientPayload::Dense(vec![0.1; 6]),
            num_samples: 1,
            error_count: 0,
            label_counts: vec![1, 0],
        });
        let reply = client
            .exchange_once_with(&request, FaultAction::DuplicateFrame)
            .unwrap();
        assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted));
        // 3 faulted-then-retried + 1 duplicated = exactly 4 applications
        // (DropBeforeSend and TruncateFrame never reached the server, their
        // retries were the only copies; DropAfterSend applied once and its
        // retry was replayed).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.iteration() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.iteration(), 4);
        assert_eq!(handle.total_samples(), 4);
        handle.shutdown();
    }

    #[test]
    fn unauthorized_client_gets_server_error() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 5);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let bad = DeviceClient::new(handle.addr(), 0, AuthToken::derive(0, 999));
        match bad.checkout() {
            Err(NetError::ServerError { .. }) => {}
            other => panic!("expected ServerError, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn run_task_trains_the_server_model() {
        use crowd_data::synthetic::GaussianMixtureSpec;
        let mut rng = StdRng::seed_from_u64(0);
        let (train, _test) = GaussianMixtureSpec::new(6, 3)
            .with_train_size(60)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(1, 7);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let client = DeviceClient::new(handle.addr(), 0, AuthToken::derive(0, 7));
        let model = MulticlassLogistic::new(6, 3).unwrap();
        let report = client
            .run_task(
                &model,
                &train,
                DeviceConfig::new(5),
                PrivacyConfig::non_private(),
                0.0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(report.samples_observed, 60);
        assert_eq!(report.checkins, 12);
        assert_eq!(handle.iteration(), 12);
        assert_eq!(handle.total_samples(), 60);
        handle.shutdown();
    }
}
