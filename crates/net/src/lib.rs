//! TCP deployment of the Crowd-ML protocol.
//!
//! The paper's prototype runs Algorithm 2 behind an Apache/MySQL web stack and the
//! devices talk to it over HTTPS. This crate provides the equivalent deployment
//! for the Rust implementation: a threaded TCP [`server::NetServer`] that hosts
//! Server Routines 1–2 behind the `crowd-proto` wire protocol, a
//! [`client::DeviceClient`] that runs Device Routines 1–3 against it, and a
//! [`cluster::LocalCluster`] helper that spins up a server plus a fleet of device
//! threads on localhost for examples and integration tests.
//!
//! Transport security (the prototype's TLS) is out of scope — the privacy
//! guarantees of Crowd-ML come from the *local* sanitization on the device, which
//! is unchanged — but device authentication tokens are enforced exactly as the
//! server routines require.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod error;
pub mod server;

pub use chaos::{ChaosCluster, ChaosReport};
pub use client::DeviceClient;
pub use cluster::{ClusterReport, LocalCluster};
pub use error::NetError;
pub use server::{NetServer, NetServerHandle};

/// Result alias for networking operations.
pub type Result<T> = std::result::Result<T, NetError>;
