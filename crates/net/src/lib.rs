//! TCP deployment of the Crowd-ML protocol.
//!
//! The paper's prototype runs Algorithm 2 behind an Apache/MySQL web stack and the
//! devices talk to it over HTTPS. This crate provides the equivalent deployment
//! for the Rust implementation: a threaded TCP [`server::NetServer`] that hosts
//! Server Routines 1–2 behind the `crowd-proto` wire protocol, a
//! [`client::DeviceClient`] that runs Device Routines 1–3 against it, and a
//! [`cluster::LocalCluster`] helper that spins up a server plus a fleet of device
//! threads on localhost for examples and integration tests.
//!
//! For scale, the same protocol is also served by an event-driven
//! [`reactor_server::ReactorServer`] built on the `crowd-reactor` core: a
//! fixed pool of reactor threads multiplexes thousands of connections, and a
//! full ingest queue throttles socket reads instead of replying `Busy`. The
//! [`driver::FleetDriver`] is its client-side counterpart — one thread driving
//! an entire simulated device fleet through nonblocking exchanges.
//!
//! Transport security (the prototype's TLS) is out of scope — the privacy
//! guarantees of Crowd-ML come from the *local* sanitization on the device, which
//! is unchanged — but device authentication tokens are enforced exactly as the
//! server routines require.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod driver;
pub mod error;
pub mod reactor_server;
pub mod server;
mod service;

pub use chaos::{AnyServerHandle, ChaosCluster, ChaosReport, ServerKind};
pub use client::{CheckinOutcome, DeviceClient, DeviceClientBuilder, RetryPolicy, RoundSession};
pub use cluster::{ClusterReport, LocalCluster};
pub use crowd_rounds::Role;
pub use driver::{FleetConfig, FleetDriver, FleetReport};
pub use error::NetError;
pub use reactor_server::{ReactorServer, ReactorServerHandle};
pub use server::{NetServer, NetServerHandle};

/// Result alias for networking operations.
pub type Result<T> = std::result::Result<T, NetError>;
