//! Localhost cluster runner: one TCP server plus a fleet of device threads.
//!
//! This is the networked counterpart of the in-process simulation in
//! `crowd-core::simulation`: real sockets, real concurrency, the same algorithm.
//! It backs the `federated_network` example and the cross-crate integration tests.

use crate::client::{DeviceClient, DeviceReport};
use crate::server::NetServer;
use crate::Result;
use crossbeam::channel;
use crowd_core::config::{DeviceConfig, PrivacyConfig, ServerConfig};
use crowd_data::Dataset;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use crowd_proto::auth::{AuthToken, TokenRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a localhost cluster run.
#[derive(Debug, Clone)]
pub struct LocalCluster {
    /// Server-side configuration (schedule, λ, radius, stopping criteria).
    pub server: ServerConfig,
    /// Per-device configuration (minibatch size, buffer bound, holdout).
    pub device: DeviceConfig,
    /// Privacy configuration shared by all devices.
    pub privacy: PrivacyConfig,
    /// Shared secret used to derive device authentication tokens.
    pub auth_secret: u64,
    /// Seed for the per-device RNGs (each device uses `seed + device_id`).
    pub seed: u64,
}

/// The result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Final global parameters.
    pub params: Vector,
    /// Number of server updates applied.
    pub server_iterations: u64,
    /// Total samples reported by all devices.
    pub total_samples: u64,
    /// Per-device participation summaries, indexed by device id.
    pub device_reports: Vec<DeviceReport>,
    /// Aggregation-runtime counters (`epoch_merges`, `checkins_applied`,
    /// `busy_rejections`, …).
    pub runtime_stats: crowd_telemetry::MetricsSnapshot,
    /// Per-device cumulative ε spend `(device_id, ε)`, ascending by device id.
    /// Empty when budget accounting is disabled and the run is non-private.
    pub budget_spent: Vec<(u64, f64)>,
}

impl LocalCluster {
    /// Creates a cluster configuration with defaults (non-private, b = 1).
    pub fn new(server: ServerConfig) -> Self {
        LocalCluster {
            server,
            device: DeviceConfig::new(1),
            privacy: PrivacyConfig::non_private(),
            auth_secret: 0xC0FFEE,
            seed: 0,
        }
    }

    /// Sets the device configuration.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Sets the privacy configuration.
    pub fn with_privacy(mut self, privacy: PrivacyConfig) -> Self {
        self.privacy = privacy;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the cluster: starts a TCP server for `dim`/`num_classes` multiclass
    /// logistic regression and one thread per entry of `partitions`, each running
    /// the full device loop over its local data. Returns once every device thread
    /// finished.
    pub fn run(
        &self,
        dim: usize,
        num_classes: usize,
        partitions: &[Dataset],
    ) -> Result<ClusterReport> {
        let model = MulticlassLogistic::new(dim, num_classes)?;
        let tokens = TokenRegistry::with_derived_tokens(partitions.len() as u64, self.auth_secret);
        let mut server_config = self.server.clone();
        // A private run with accounting left at its default gets the ledger
        // for free: charge each checkin the privacy config's total ε
        // (tracking only — no ceiling unless the caller set one).
        if server_config.budget.is_disabled() && !self.privacy.is_non_private() {
            server_config.budget.per_checkin_epsilon =
                self.privacy.budget.total_per_checkin(num_classes);
        }
        let handle = NetServer::start(model, server_config, tokens)?;
        let addr = handle.addr();

        let (tx, rx) = channel::unbounded::<(usize, Result<DeviceReport>)>();
        let mut threads = Vec::with_capacity(partitions.len());
        for (device_id, part) in partitions.iter().enumerate() {
            let part = part.clone();
            let tx = tx.clone();
            let device_config = self.device;
            let privacy = self.privacy;
            let lambda = self.server.lambda;
            let auth_secret = self.auth_secret;
            let seed = self.seed;
            threads.push(std::thread::spawn(move || {
                let client = DeviceClient::builder(
                    addr,
                    device_id as u64,
                    AuthToken::derive(device_id as u64, auth_secret),
                )
                .build();
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(device_id as u64));
                // A model construction failure (cannot happen after the server
                // constructor validated the same dimensions) is reported like
                // any other device error instead of panicking the thread.
                let result = MulticlassLogistic::new(dim, num_classes)
                    .map_err(crate::NetError::from)
                    .and_then(|model| {
                        client.run_task(&model, &part, device_config, privacy, lambda, &mut rng)
                    });
                let _ = tx.send((device_id, result));
            }));
        }
        drop(tx);

        let mut device_reports = vec![DeviceReport::default(); partitions.len()];
        let mut first_error: Option<crate::NetError> = None;
        for (device_id, result) in rx.iter() {
            match result {
                Ok(report) => device_reports[device_id] = report,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        for t in threads {
            let _ = t.join();
        }

        let report = ClusterReport {
            params: handle.params(),
            server_iterations: handle.iteration(),
            total_samples: handle.total_samples(),
            device_reports,
            runtime_stats: handle.runtime_stats(),
            budget_spent: handle.budget_ledger(),
        };
        handle.shutdown();
        match first_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::partition::{partition, PartitionStrategy};
    use crowd_data::synthetic::GaussianMixtureSpec;
    use crowd_learning::metrics::error_rate;
    use crowd_learning::model::Model;

    #[test]
    fn cluster_learns_a_small_task_over_tcp() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = GaussianMixtureSpec::new(8, 3)
            .with_train_size(300)
            .with_test_size(100)
            .with_mean_scale(2.5)
            .with_noise_std(0.6)
            .generate(&mut rng)
            .unwrap();
        let parts = partition(&train, 5, PartitionStrategy::Iid, &mut rng).unwrap();

        let cluster = LocalCluster::new(ServerConfig::new().with_rate_constant(2.0))
            .with_device(DeviceConfig::new(2))
            .with_seed(7);
        let report = cluster.run(8, 3, &parts).unwrap();

        assert_eq!(report.total_samples, 300);
        assert_eq!(report.server_iterations, 150);
        assert_eq!(report.device_reports.len(), 5);
        assert!(report.device_reports.iter().all(|r| r.checkins == 30));

        let model = MulticlassLogistic::new(8, 3).unwrap();
        let err = error_rate(&model, &report.params, &test).unwrap();
        assert!(err < 0.25, "networked training error {err}");
        assert_eq!(report.params.len(), model.param_dim());
    }

    #[test]
    fn cluster_survives_backpressure_without_losing_checkins() {
        // A 2-deep ingest queue under 6 concurrent devices forces Busy
        // rejections; the client-side retry must make them invisible: every
        // sample still arrives and every minibatch is still applied.
        let mut rng = StdRng::seed_from_u64(3);
        let (train, _) = GaussianMixtureSpec::new(4, 2)
            .with_train_size(240)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        let parts = partition(&train, 6, PartitionStrategy::Iid, &mut rng).unwrap();
        let config = ServerConfig::new().with_queue_bound(2).with_shard_count(4);
        let cluster = LocalCluster::new(config).with_device(DeviceConfig::new(4));
        let report = cluster.run(4, 2, &parts).unwrap();
        assert_eq!(report.total_samples, 240);
        assert_eq!(report.server_iterations, 60);
        assert!(report.device_reports.iter().all(|r| r.checkins == 10));
        assert_eq!(report.runtime_stats.get("checkins_applied"), 60);
    }

    #[test]
    fn cluster_respects_server_stopping_criterion() {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, _) = GaussianMixtureSpec::new(4, 2)
            .with_train_size(200)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        let parts = partition(&train, 4, PartitionStrategy::Iid, &mut rng).unwrap();
        let cluster = LocalCluster::new(ServerConfig::new().with_max_iterations(10))
            .with_device(DeviceConfig::new(1));
        let report = cluster.run(4, 2, &parts).unwrap();
        assert_eq!(report.server_iterations, 10);
        // At least one device observed the stop signal.
        assert!(report.device_reports.iter().any(|r| r.stopped_by_server));
    }
}
