//! Event-driven Crowd-ML TCP server on the `crowd-reactor` core.
//!
//! Serves the same protocol as [`crate::NetServer`] — same
//! [`crate::service::ServerCore`], same replies byte for byte — but instead of
//! one thread per connection, a small fixed pool of reactor threads
//! multiplexes every connection through nonblocking sockets and resumable
//! frame state machines. The differences that matter at 10k devices:
//!
//! * **Thread count is O(reactor threads), not O(connections).** An idle or
//!   slow device costs a slab slot and a parked socket, not a stack.
//! * **Backpressure is read throttling, not Busy spam.** When the ingest
//!   queue is full, the connection is parked with read interest disarmed; TCP
//!   flow control pushes back to the device, and the parked gradient is
//!   re-admitted as soon as the queue drains. The threaded server instead
//!   replies `Busy` and makes the device retry the full upload.
//! * **Blocking waits live on pump threads.** Checkin acks wait for their
//!   epoch on the per-reactor completion pump, never on an event loop.
//!
//! [`ReactorServerHandle`] mirrors [`crate::NetServerHandle`] method for
//! method, so harnesses (chaos, cluster, benches) can drive either server
//! through one surface — see `crate::chaos::AnyServerHandle`.

use crate::server::build_runtime;
use crate::service::{handle_event, ServerCore};
use crate::Result;
use crowd_core::config::ServerConfig;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use crowd_proto::auth::TokenRegistry;
use crowd_reactor::{Reactor, ReactorConfig, ReactorStats};
use crowd_store::RecoveryReport;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

/// Upper bound on graceful-shutdown drain: 1 ms polls until every in-flight
/// checkin has been acked and every queued reply flushed.
const DRAIN_POLLS: usize = 10_000;

/// The event-driven Crowd-ML TCP server.
pub struct ReactorServer;

impl ReactorServer {
    /// Starts a reactor server on `127.0.0.1` (ephemeral port) with the
    /// default reactor tuning. Model, aggregation, persistence, and token
    /// semantics are identical to [`crate::NetServer::start`].
    pub fn start(
        model: MulticlassLogistic,
        config: ServerConfig,
        tokens: TokenRegistry,
    ) -> Result<ReactorServerHandle> {
        Self::start_with(model, config, tokens, ReactorConfig::default())
    }

    /// Starts a reactor server with explicit reactor tuning (thread count,
    /// connection cap, frame limit).
    pub fn start_with(
        model: MulticlassLogistic,
        config: ServerConfig,
        tokens: TokenRegistry,
        reactor_config: ReactorConfig,
    ) -> Result<ReactorServerHandle> {
        let (runtime, recovery) = build_runtime(model, config)?;
        let core = Arc::new(ServerCore::new(runtime, tokens));
        let service_core = Arc::clone(&core);
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let reactor = Reactor::start_with_metrics(
            listener,
            Arc::new(move |message| handle_event(&service_core, message)),
            Arc::clone(&core.pool),
            reactor_config,
            Arc::clone(&core.metrics),
        )?;
        Ok(ReactorServerHandle {
            addr,
            core,
            reactor: Some(reactor),
            recovery,
        })
    }
}

/// A handle to a running reactor server; mirrors [`crate::NetServerHandle`].
pub struct ReactorServerHandle {
    addr: SocketAddr,
    core: Arc<ServerCore>,
    reactor: Option<Reactor>,
    recovery: Option<RecoveryReport>,
}

impl ReactorServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server iteration (number of applied epochs).
    pub fn iteration(&self) -> u64 {
        self.core.runtime.iteration()
    }

    /// A copy of the current parameters.
    pub fn params(&self) -> Vector {
        self.core.runtime.params()
    }

    /// Whether the stopping criterion has been met.
    pub fn stopped(&self) -> bool {
        self.core.runtime.stopped()
    }

    /// The total number of samples reported by devices.
    pub fn total_samples(&self) -> u64 {
        self.core.runtime.total_samples()
    }

    /// The privately estimated error rate (Eq. 14), if any samples were reported.
    pub fn error_estimate(&self) -> Option<f64> {
        self.core.runtime.error_estimate()
    }

    /// A snapshot of the aggregation-runtime counters.
    pub fn runtime_stats(&self) -> crowd_telemetry::MetricsSnapshot {
        self.core.runtime.stats()
    }

    /// The shared metric registry backing this server's scrape surface.
    pub fn metrics(&self) -> Arc<crowd_telemetry::Registry> {
        Arc::clone(&self.core.metrics)
    }

    /// Point-in-time reactor counters (accepted/active/parked/inflight).
    pub fn reactor_stats(&self) -> Option<ReactorStats> {
        self.reactor.as_ref().map(|r| r.stats())
    }

    /// What the recovery path found at bind time (`None` for volatile servers).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The per-device ε ledger, ascending by device id.
    pub fn budget_ledger(&self) -> Vec<(u64, f64)> {
        self.core.runtime.budget_ledger()
    }

    /// Settles the open cohort round (finalizing pending submissions and
    /// charging their ε) without stopping the server. No-op when rounds are
    /// off or nothing is pending.
    pub fn settle_rounds(&self) {
        self.core.runtime.settle_rounds()
    }

    /// `true` when the device has spent its entire privacy budget.
    pub fn budget_exhausted(&self, device_id: u64) -> bool {
        self.core.runtime.budget_exhausted(device_id)
    }

    /// Gracefully stops the server: refuse new connections, flush the
    /// aggregation runtime (which resolves every pending and parked checkin),
    /// drain the reactor until all replies are on the wire, then stop it.
    pub fn shutdown(mut self) {
        self.stop_graceful();
    }

    /// Crash-stops the server, simulating a SIGKILL for recovery testing:
    /// in-flight and parked checkins are dropped unacknowledged, no final
    /// flush or checkpoint snapshot is written. Same WAL-backed recovery
    /// contract as [`crate::NetServerHandle::kill`].
    pub fn kill(mut self) {
        self.core.runtime.kill();
        if let Some(reactor) = self.reactor.take() {
            reactor.stop();
        }
    }

    fn stop_graceful(&mut self) {
        let Some(reactor) = self.reactor.take() else {
            return;
        };
        reactor.stop_accepting();
        // Flush the runtime FIRST: pending waits resolve with their epoch
        // outcome and parked retries resolve to a shutdown refusal, so the
        // drain below cannot stall behind an epoch that would never close.
        self.core.runtime.shutdown();
        reactor.drain(DRAIN_POLLS);
        reactor.stop();
    }
}

impl Drop for ReactorServerHandle {
    fn drop(&mut self) {
        self.stop_graceful();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_proto::auth::AuthToken;
    use crowd_proto::frame::{read_message, write_message};
    use crowd_proto::message::{
        BatchCheckinRequest, CheckinRequest, CheckoutRequest, ErrorCode, ErrorReply,
        GradientPayload, Message,
    };
    use crowd_proto::PROTOCOL_VERSION;
    use std::net::TcpStream;
    use std::time::Duration;

    fn start_test_server() -> (ReactorServerHandle, AuthToken) {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        let handle = ReactorServer::start(model, ServerConfig::new(), tokens).unwrap();
        (handle, AuthToken::derive(0, 99))
    }

    fn roundtrip(addr: SocketAddr, msg: &Message) -> Message {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, msg).unwrap();
        read_message(&mut stream).unwrap()
    }

    fn checkin_item(device_id: u64, secret: u64, gradient: Vec<f64>) -> CheckinRequest {
        CheckinRequest {
            device_id,
            token: AuthToken::derive(device_id, secret),
            checkout_iteration: 0,
            nonce: 0,
            round_id: 0,
            gradient: GradientPayload::Dense(gradient),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    #[test]
    fn checkout_and_checkin_round_trip() {
        let (handle, token) = start_test_server();
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token,
            }),
        );
        assert!(matches!(
            reply,
            Message::CheckoutResponse(r) if r.iteration == 0 && r.params.len() == 12
        ));
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckinRequest(checkin_item(1, 99, vec![0.1; 12])),
        );
        assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted && ack.iteration == 1));
        assert_eq!(handle.iteration(), 1);
        assert_eq!(handle.total_samples(), 2);
        assert_eq!(handle.runtime_stats().get("checkins_applied"), 1);
        handle.shutdown();
    }

    #[test]
    fn replies_match_threaded_server_for_error_paths() {
        // The two servers share ServerCore, so the full refusal surface must
        // be identical: bad token, bad version, unexpected type, batch mix.
        let (handle, _token) = start_test_server();
        let bad_token = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token: AuthToken::derive(0, 12345),
            }),
        );
        assert!(matches!(
            bad_token,
            Message::Error(ErrorReply {
                code: ErrorCode::Unauthorized,
                ..
            })
        ));
        let bad_version = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: 999,
                device_id: 0,
                token: AuthToken::derive(0, 99),
            }),
        );
        assert!(matches!(
            bad_version,
            Message::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                ..
            })
        ));
        let batch = roundtrip(
            handle.addr(),
            &Message::BatchCheckinRequest(BatchCheckinRequest {
                items: vec![
                    checkin_item(1, 99, vec![0.1; 12]),
                    checkin_item(2, 99, vec![0.5; 3]),
                    checkin_item(3, 12345, vec![0.1; 12]),
                ],
            }),
        );
        match batch {
            Message::BatchCheckinAck(ack) => {
                assert_eq!(ack.acks.len(), 3);
                assert!(ack.acks[0].accepted);
                assert_eq!(ack.acks[1].reject, Some(ErrorCode::BadRequest));
                assert_eq!(ack.acks[2].reject, Some(ErrorCode::Unauthorized));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn one_connection_many_sequential_exchanges() {
        let (handle, token) = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        for round in 0..50u64 {
            let mut item = checkin_item(1, 99, vec![0.01; 12]);
            item.nonce = round;
            item.checkout_iteration = round;
            write_message(&mut stream, &Message::CheckinRequest(item)).unwrap();
            let reply = read_message(&mut stream).unwrap();
            assert!(
                matches!(reply, Message::CheckinAck(ack) if ack.accepted),
                "round {round}: {reply:?}"
            );
            write_message(
                &mut stream,
                &Message::CheckoutRequest(CheckoutRequest {
                    version: PROTOCOL_VERSION,
                    device_id: 0,
                    token,
                }),
            )
            .unwrap();
            let reply = read_message(&mut stream).unwrap();
            assert!(matches!(reply, Message::CheckoutResponse(r) if r.iteration == round + 1));
        }
        assert_eq!(handle.iteration(), 50);
        handle.shutdown();
    }

    #[test]
    fn full_queue_throttles_instead_of_busy() {
        // Same saturation shape as the threaded server's busy test — but the
        // reactor parks connections instead of replying Busy, and the parked
        // checkins all resolve at the shutdown flush. Devices never see a
        // Busy frame on this path.
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        let config = ServerConfig::new().with_agg(crowd_core::config::AggSettings {
            shard_count: 1,
            queue_bound: 1,
            epoch_size: u64::MAX,
            worker_threads: 1,
            retry_after_ms: 9,
            flush_idle_ms: 0,
        });
        let handle = ReactorServer::start(model, config, tokens).unwrap();
        let mut readers = Vec::new();
        for attempt in 0..12u64 {
            let mut item = checkin_item(attempt % 4, 99, vec![0.1; 12]);
            item.nonce = attempt;
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            write_message(&mut stream, &Message::CheckinRequest(item)).unwrap();
            readers.push(std::thread::spawn(move || {
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                read_message(&mut stream).ok()
            }));
        }
        // Give the burst time to saturate the 1-deep queue and park, then
        // flush via shutdown: parked gradients re-admit as the queue drains.
        std::thread::sleep(Duration::from_millis(200));
        handle.shutdown();
        let mut acked = 0;
        let mut busy = 0;
        for reader in readers {
            match reader.join().unwrap() {
                Some(Message::CheckinAck(_)) => acked += 1,
                Some(Message::Busy(_)) => busy += 1,
                // Parked connections that could not re-admit before the
                // runtime closed are refused with TaskEnded.
                Some(Message::Error(ErrorReply {
                    code: ErrorCode::TaskEnded,
                    ..
                })) => {}
                Some(other) => panic!("unexpected reply {other:?}"),
                None => {}
            }
        }
        assert_eq!(busy, 0, "reactor backpressure must not emit Busy frames");
        assert!(acked > 0, "admitted checkins resolve at the final flush");
    }

    #[test]
    fn kill_and_restart_recovers_state() {
        use crowd_store::testutil::temp_dir;
        let dir = temp_dir("reactor-restart");
        let config = ServerConfig::new()
            .with_data_dir(&dir)
            .with_snapshot_every(2)
            .with_budget(0.25, f64::INFINITY);
        let tokens = || TokenRegistry::with_derived_tokens(4, 99);
        let model = || MulticlassLogistic::new(4, 3).unwrap();

        let handle = ReactorServer::start(model(), config.clone(), tokens()).unwrap();
        assert_eq!(handle.recovery_report().map(|r| r.recovered()), Some(false));
        for step in 0..3u64 {
            let mut item = checkin_item(step % 2, 99, vec![0.1; 12]);
            item.nonce = step;
            let reply = roundtrip(handle.addr(), &Message::CheckinRequest(item));
            assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted));
        }
        let params_at_kill = handle.params();
        let ledger_at_kill = handle.budget_ledger();
        handle.kill();

        let handle = ReactorServer::start(model(), config, tokens()).unwrap();
        let report = handle.recovery_report().unwrap();
        assert!(report.recovered());
        assert_eq!(handle.iteration(), 3);
        assert_eq!(handle.params().as_slice(), params_at_kill.as_slice());
        assert_eq!(handle.budget_ledger(), ledger_at_kill);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reactor_stats_are_exposed() {
        let (handle, token) = start_test_server();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        write_message(
            &mut second,
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token,
            }),
        )
        .unwrap();
        let _ = read_message(&mut second).unwrap();
        let stats = handle.reactor_stats().unwrap();
        assert!(stats.accepted >= 2);
        assert!(stats.active >= 1);
        assert_eq!(stats.rejected, 0);
        drop(stream);
        drop(second);
        handle.shutdown();
    }
}
