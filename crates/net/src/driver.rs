//! Single-threaded fleet driver: one thread running an entire simulated
//! device fleet against a Crowd-ML server.
//!
//! [`crate::DeviceClient`] is the faithful per-device client — one blocking
//! connection per device, one thread per device when a fleet is simulated.
//! That model tops out around the thread budget of the machine, far below the
//! paper's "thousands of devices" premise. `FleetDriver` restructures the
//! client side the same way `crowd-reactor` restructures the server: every
//! device becomes a resumable state machine (checkout → checkin → next
//! round), all of them multiplexed over nonblocking sockets by one poller
//! loop.
//!
//! Each admitted device holds one persistent connection for its whole
//! lifetime of rounds, so N admitted devices really are N concurrent
//! connections on the server — the quantity the reactor-vs-threaded scaling
//! bench measures. `max_open` caps how many devices are admitted at once;
//! with a 20k file-descriptor budget and two fd ends per localhost
//! connection, fleets beyond ~4k devices are served through a rolling
//! admission window (a finished device's slot goes to the next queued one).
//!
//! Determinism: gradients, labels, and nonces are pure functions of
//! `(device, round)`; a retried exchange reuses its nonce so server-side
//! dedup keeps retries idempotent. The driver reads no wallclock — waiting is
//! expressed in poller ticks, and the stall watchdog counts event-less ticks.

use crowd_proto::auth::AuthToken;
use crowd_proto::frame::DEFAULT_MAX_FRAME;
use crowd_proto::message::{CheckinRequest, CheckoutRequest, ErrorCode, GradientPayload, Message};
use crowd_proto::{BufPool, PROTOCOL_VERSION};
use crowd_reactor::{FrameReader, FrameWriter, ReadEvent, WriteEvent};
use polling::{Event, Events, Poller};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One poller tick: the wait timeout used when backoffs or the stall watchdog
/// need time to pass. Ticks are the driver's only clock.
const TICK: Duration = Duration::from_millis(2);

/// Milliseconds per tick, for converting server `retry_after_ms` hints.
const TICK_MS: u32 = 2;

/// Maximum new connections opened per event-loop pass. Connecting an entire
/// fleet in one burst overflows the listener's accept backlog (128 on Linux);
/// overflowed SYNs are silently dropped and retransmitted after ~1 s, which
/// dwarfs every other latency in a fleet run. Pacing admission keeps the
/// backlog bounded while the loop's event wakeups keep admission fast.
const ADMIT_BURST: usize = 64;

/// Fleet shape and budget knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated devices.
    pub devices: usize,
    /// Checkout+checkin rounds each device performs.
    pub rounds: u64,
    /// Dense gradient length (`dim * classes` of the server's model).
    pub dim: usize,
    /// Class count (shapes the per-checkin label histogram).
    pub classes: usize,
    /// Secret the server's token registry derived device tokens from.
    pub auth_secret: u64,
    /// Maximum simultaneously admitted devices (= open connections). Bounds
    /// the file-descriptor footprint: each admitted device costs one client
    /// fd here plus one server fd.
    pub max_open: usize,
    /// Transport retries per device before it is marked failed.
    pub max_attempts: u32,
    /// Event-less poller ticks before the driver declares the server stalled
    /// and aborts (marking unfinished devices failed).
    pub stall_ticks: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 100,
            rounds: 2,
            dim: 12,
            classes: 3,
            auth_secret: 99,
            max_open: 2048,
            max_attempts: 8,
            stall_ticks: 30_000,
        }
    }
}

/// What the fleet accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Checkins acknowledged as accepted.
    pub acked: u64,
    /// Checkins acknowledged but rejected (stale iteration, dedup replay, …).
    pub rejected: u64,
    /// Successful checkouts.
    pub checkouts: u64,
    /// `Busy` replies absorbed (threaded-server backpressure).
    pub busy: u64,
    /// Devices refused for an exhausted privacy budget (these still count as
    /// finished, not failed — the refusal is the protocol working).
    pub exhausted_devices: u64,
    /// Devices that gave up (transport failures or fatal server errors).
    pub failed_devices: u64,
    /// Reconnects after mid-stream transport errors.
    pub reconnects: u64,
}

impl FleetReport {
    /// `true` when every device finished every round without failures.
    pub fn clean(&self) -> bool {
        self.failed_devices == 0 && self.busy == 0 && self.exhausted_devices == 0
    }
}

/// Where a device is in its exchange loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Checkout,
    Checkin,
}

/// How a device ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Completed,
    Exhausted,
    Failed,
}

struct Device {
    round: u64,
    step: Step,
    attempts: u32,
    checkout_iteration: u64,
    outcome: Option<Outcome>,
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    registered: bool,
}

enum Drive {
    Reply(Message),
    WaitReadable,
    WaitWritable,
    Dead,
}

fn drive_conn(conn: &mut Conn) -> Drive {
    match conn.writer.poll_write(&mut conn.stream) {
        Ok(WriteEvent::Flushed) => {}
        Ok(WriteEvent::NeedMore) => return Drive::WaitWritable,
        Err(_) => return Drive::Dead,
    }
    match conn.reader.poll_read(&mut conn.stream) {
        Ok(ReadEvent::Frame(message)) => Drive::Reply(message),
        Ok(ReadEvent::NeedMore) => Drive::WaitReadable,
        Ok(ReadEvent::Closed) | Err(_) => Drive::Dead,
    }
}

/// Drives a whole device fleet from the calling thread.
pub struct FleetDriver {
    addr: SocketAddr,
    config: FleetConfig,
    poller: Poller,
    pool: Arc<BufPool>,
    devices: Vec<Device>,
    conns: Vec<Option<Conn>>,
    /// Devices waiting for an admission slot (no connection open).
    ready: VecDeque<usize>,
    /// Devices waiting out a backoff, in remaining ticks. A backoff entry may
    /// or may not still hold its connection.
    backoff: Vec<(usize, u32)>,
    open: usize,
    unfinished: usize,
    report: FleetReport,
}

impl FleetDriver {
    /// Runs `config.devices` simulated devices against the server at `addr`
    /// and reports what the fleet accomplished. Blocks the calling thread
    /// until every device finished or the stall watchdog fires.
    pub fn run(addr: SocketAddr, config: FleetConfig) -> io::Result<FleetReport> {
        let poller = Poller::new()?;
        let device_count = config.devices;
        let mut driver = FleetDriver {
            addr,
            poller,
            pool: Arc::new(BufPool::default()),
            devices: (0..device_count)
                .map(|_| Device {
                    round: 0,
                    step: Step::Checkout,
                    attempts: 0,
                    checkout_iteration: 0,
                    outcome: None,
                })
                .collect(),
            conns: (0..device_count).map(|_| None).collect(),
            ready: (0..device_count).collect(),
            backoff: Vec::new(),
            open: 0,
            unfinished: device_count,
            report: FleetReport::default(),
            config,
        };
        driver.event_loop()?;
        Ok(driver.report)
    }

    fn event_loop(&mut self) -> io::Result<()> {
        let mut events = Events::new();
        let mut stall_ticks = 0u32;
        while self.unfinished > 0 {
            let mut progressed = false;
            // Admit queued devices into free connection slots, at most
            // ADMIT_BURST per pass so the accept backlog never overflows.
            let mut burst = ADMIT_BURST;
            while self.open < self.config.max_open && burst > 0 {
                let Some(idx) = self.ready.pop_front() else {
                    break;
                };
                burst -= 1;
                progressed |= self.start_device(idx);
            }
            if self.unfinished == 0 {
                break;
            }
            events.clear();
            // Sleep a tick when backoffs need time to pass; otherwise park
            // until socket readiness (the notifier is unused here, so a
            // plain timeout bounds watchdog latency).
            let timeout = Some(TICK);
            self.poller.wait(&mut events, timeout)?;
            let keys: Vec<usize> = events.iter().map(|e| e.key).collect();
            for key in keys {
                if self.conns.get(key).map(|c| c.is_some()) == Some(true) {
                    progressed |= self.pump(key);
                }
            }
            progressed |= self.tick_backoffs();
            if progressed {
                stall_ticks = 0;
            } else {
                stall_ticks += 1;
                if stall_ticks > self.config.stall_ticks {
                    // The server stopped making progress: fail every
                    // unfinished device rather than spinning forever.
                    for idx in 0..self.devices.len() {
                        if self.devices[idx].outcome.is_none() {
                            self.finish(idx, Outcome::Failed);
                        }
                    }
                    break;
                }
            }
        }
        Ok(())
    }

    /// Opens (or reopens) a device's connection and sends its next request.
    /// Returns whether any progress happened.
    fn start_device(&mut self, idx: usize) -> bool {
        debug_assert!(self.conns[idx].is_none());
        let stream = match TcpStream::connect(self.addr) {
            Ok(s) => s,
            Err(_) => return self.transport_error(idx),
        };
        if stream.set_nonblocking(true).is_err() {
            return self.transport_error(idx);
        }
        stream.set_nodelay(true).ok();
        self.conns[idx] = Some(Conn {
            stream,
            reader: FrameReader::new(Arc::clone(&self.pool), DEFAULT_MAX_FRAME),
            writer: FrameWriter::new(Arc::clone(&self.pool)),
            registered: false,
        });
        self.open += 1;
        self.send_request(idx);
        self.pump(idx)
    }

    /// Enqueues the request for the device's current step on its open
    /// connection.
    fn send_request(&mut self, idx: usize) {
        let device = &self.devices[idx];
        let request = match device.step {
            Step::Checkout => Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: idx as u64,
                token: AuthToken::derive(idx as u64, self.config.auth_secret),
            }),
            Step::Checkin => Message::CheckinRequest(self.checkin_request(idx)),
        };
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.writer.enqueue(&request);
        }
    }

    /// The deterministic checkin for `(device, round)`: gradient, labels, and
    /// nonce are pure functions of the pair, so a retry resends bitwise the
    /// same request and the server's dedup makes it idempotent.
    fn checkin_request(&self, idx: usize) -> CheckinRequest {
        let device = &self.devices[idx];
        let (id, round) = (idx as u64, device.round);
        let gradient: Vec<f64> = (0..self.config.dim)
            .map(|i| {
                let mix = id
                    .wrapping_mul(31)
                    .wrapping_add(round.wrapping_mul(7))
                    .wrapping_add(i as u64);
                ((mix % 13) as f64 - 6.0) * 1e-3
            })
            .collect();
        let classes = self.config.classes.max(1);
        let mut label_counts = vec![0i64; classes];
        label_counts[(id.wrapping_add(round) % classes as u64) as usize] = 2;
        CheckinRequest {
            device_id: id,
            token: AuthToken::derive(id, self.config.auth_secret),
            checkout_iteration: device.checkout_iteration,
            nonce: round,
            round_id: 0,
            gradient: GradientPayload::Dense(gradient),
            num_samples: 2,
            error_count: 1,
            label_counts,
        }
    }

    /// Pumps one device's connection: flush writes, read replies, advance the
    /// state machine — repeating while exchanges complete synchronously.
    /// Returns whether any reply was processed (or the device finished).
    fn pump(&mut self, idx: usize) -> bool {
        let mut progressed = false;
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return progressed;
            };
            match drive_conn(conn) {
                Drive::Reply(message) => {
                    progressed = true;
                    if !self.on_reply(idx, message) {
                        return true;
                    }
                }
                Drive::WaitReadable => {
                    return self.arm(idx, Event::readable(idx)) || progressed;
                }
                Drive::WaitWritable => {
                    return self.arm(idx, Event::writable(idx)) || progressed;
                }
                Drive::Dead => {
                    self.close_conn(idx);
                    self.transport_error(idx);
                    return true;
                }
            }
        }
    }

    /// (Re-)arms poller interest for a connection. Returns false always (no
    /// progress), folding registration failures into a transport error.
    fn arm(&mut self, idx: usize, event: Event) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        let result = if conn.registered {
            self.poller.modify(&conn.stream, event)
        } else {
            let result = self.poller.add(&conn.stream, event);
            if result.is_ok() {
                conn.registered = true;
            }
            result
        };
        if result.is_err() {
            self.close_conn(idx);
            self.transport_error(idx);
        }
        false
    }

    /// Advances a device past a received reply. Returns `true` when the
    /// device immediately has a next request queued on the same connection
    /// (the caller keeps pumping), `false` when it finished or went into
    /// backoff.
    fn on_reply(&mut self, idx: usize, message: Message) -> bool {
        self.devices[idx].attempts = 0;
        let step = self.devices[idx].step;
        match (step, message) {
            (Step::Checkout, Message::CheckoutResponse(r)) => {
                self.report.checkouts += 1;
                self.devices[idx].checkout_iteration = r.iteration;
                self.devices[idx].step = Step::Checkin;
                self.send_request(idx);
                true
            }
            (Step::Checkin, Message::CheckinAck(ack)) => {
                if ack.accepted {
                    self.report.acked += 1;
                } else {
                    self.report.rejected += 1;
                }
                let device = &mut self.devices[idx];
                device.round += 1;
                device.step = Step::Checkout;
                if device.round >= self.config.rounds {
                    self.finish(idx, Outcome::Completed);
                    false
                } else {
                    self.send_request(idx);
                    true
                }
            }
            (_, Message::Busy(busy)) => {
                // Threaded-server backpressure: hold the connection open and
                // resend the same step after the hinted pause. (The reactor
                // server never sends this — it throttles reads instead.)
                self.report.busy += 1;
                self.backoff.push((idx, busy.retry_after_ms / TICK_MS + 1));
                false
            }
            (_, Message::Error(e)) => match e.code {
                ErrorCode::BudgetExhausted => {
                    self.report.exhausted_devices += 1;
                    self.finish(idx, Outcome::Exhausted);
                    false
                }
                // Fatal for this device: the server is gone or the request
                // can never succeed.
                _ => {
                    self.finish(idx, Outcome::Failed);
                    false
                }
            },
            _ => {
                self.finish(idx, Outcome::Failed);
                false
            }
        }
    }

    /// Handles a connect/read/write failure: bounded retries with a one-tick
    /// pause, then the device is marked failed. Returns whether the device
    /// finished (progress).
    fn transport_error(&mut self, idx: usize) -> bool {
        let device = &mut self.devices[idx];
        device.attempts += 1;
        if device.attempts > self.config.max_attempts {
            self.finish(idx, Outcome::Failed);
            true
        } else {
            self.report.reconnects += 1;
            self.backoff.push((idx, device.attempts));
            false
        }
    }

    /// Counts down backoffs; expired devices resume (resending on their open
    /// connection, or reconnecting). Returns whether any resumed device made
    /// progress.
    fn tick_backoffs(&mut self) -> bool {
        if self.backoff.is_empty() {
            return false;
        }
        let mut expired = Vec::new();
        self.backoff.retain_mut(|(idx, ticks)| {
            *ticks = ticks.saturating_sub(1);
            if *ticks == 0 {
                expired.push(*idx);
                false
            } else {
                true
            }
        });
        let mut progressed = false;
        for idx in expired {
            if self.devices[idx].outcome.is_some() {
                continue;
            }
            if self.conns[idx].is_some() {
                // Busy backoff: the connection is still open; resend.
                self.send_request(idx);
                progressed |= self.pump(idx);
            } else if self.open < self.config.max_open {
                progressed |= self.start_device(idx);
            } else {
                self.ready.push_back(idx);
            }
        }
        progressed
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            if conn.registered {
                let _ = self.poller.delete(&conn.stream);
            }
            self.open -= 1;
        }
    }

    fn finish(&mut self, idx: usize, outcome: Outcome) {
        self.close_conn(idx);
        if self.devices[idx].outcome.is_none() {
            self.devices[idx].outcome = Some(outcome);
            if outcome == Outcome::Failed {
                self.report.failed_devices += 1;
            }
            self.unfinished -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor_server::ReactorServer;
    use crate::server::NetServer;
    use crowd_core::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use crowd_proto::auth::TokenRegistry;

    fn fleet(devices: usize, rounds: u64) -> FleetConfig {
        FleetConfig {
            devices,
            rounds,
            dim: 12,
            classes: 3,
            auth_secret: 99,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_completes_against_reactor_server() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(64, 99);
        let handle = ReactorServer::start(model, ServerConfig::new(), tokens).unwrap();
        let report = FleetDriver::run(handle.addr(), fleet(64, 3)).unwrap();
        assert_eq!(report.failed_devices, 0, "{report:?}");
        assert_eq!(report.acked + report.rejected, 64 * 3);
        assert_eq!(report.checkouts, 64 * 3);
        assert!(handle.iteration() > 0);
        assert_eq!(handle.runtime_stats().get("checkins_applied"), 64 * 3);
        handle.shutdown();
    }

    #[test]
    fn fleet_completes_against_threaded_server() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(32, 99);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        let report = FleetDriver::run(handle.addr(), fleet(32, 2)).unwrap();
        assert_eq!(report.failed_devices, 0, "{report:?}");
        assert_eq!(report.acked + report.rejected, 32 * 2);
        handle.shutdown();
    }

    #[test]
    fn admission_window_serves_fleets_larger_than_the_window() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(50, 99);
        let handle = ReactorServer::start(model, ServerConfig::new(), tokens).unwrap();
        let config = FleetConfig {
            max_open: 8,
            ..fleet(50, 2)
        };
        let report = FleetDriver::run(handle.addr(), config).unwrap();
        assert_eq!(report.failed_devices, 0, "{report:?}");
        assert_eq!(report.acked + report.rejected, 50 * 2);
        handle.shutdown();
    }

    #[test]
    fn unknown_devices_fail_without_stalling_the_fleet() {
        // The registry only covers devices 0–7; devices 8–15 get Unauthorized
        // and must fail fast while the authorized half completes.
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(8, 99);
        let handle = ReactorServer::start(model, ServerConfig::new(), tokens).unwrap();
        let report = FleetDriver::run(handle.addr(), fleet(16, 2)).unwrap();
        assert_eq!(report.failed_devices, 8, "{report:?}");
        assert_eq!(report.acked + report.rejected, 8 * 2);
        handle.shutdown();
    }

    #[test]
    fn exhausted_budgets_finish_devices_cleanly() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        // One 0.6-ε checkin fits, the second checkout is refused.
        let config = ServerConfig::new().with_budget(0.6, 1.0);
        let handle = ReactorServer::start(model, config, tokens).unwrap();
        let report = FleetDriver::run(handle.addr(), fleet(4, 5)).unwrap();
        assert_eq!(report.failed_devices, 0, "{report:?}");
        assert_eq!(report.exhausted_devices, 4);
        assert!(report.acked >= 4);
        handle.shutdown();
    }
}
