//! Error type for the networking crate.

use std::fmt;

/// Errors produced by the TCP deployment.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket or I/O failure.
    Io(std::io::Error),
    /// Protocol encode/decode/framing failure.
    Proto(crowd_proto::ProtoError),
    /// The core framework reported an error while serving a request.
    Core(crowd_core::CoreError),
    /// The aggregation runtime reported an error.
    Agg(crowd_agg::AggError),
    /// The server replied with a protocol-level error.
    ServerError {
        /// The error code reported by the server.
        code: crowd_proto::message::ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The peer sent a message that does not fit the current protocol state.
    UnexpectedMessage {
        /// What was expected.
        expected: &'static str,
        /// What was received.
        received: &'static str,
    },
    /// A round-session operation was used outside its protocol state (the
    /// server runs free, or an unselected device tried to submit).
    Round(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Proto(e) => write!(f, "protocol error: {e}"),
            NetError::Core(e) => write!(f, "core error: {e}"),
            NetError::Agg(e) => write!(f, "aggregation error: {e}"),
            NetError::ServerError { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            NetError::UnexpectedMessage { expected, received } => {
                write!(f, "expected {expected}, received {received}")
            }
            NetError::Round(detail) => write!(f, "round protocol misuse: {detail}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Proto(e) => Some(e),
            NetError::Core(e) => Some(e),
            NetError::Agg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<crowd_proto::ProtoError> for NetError {
    fn from(e: crowd_proto::ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl From<crowd_core::CoreError> for NetError {
    fn from(e: crowd_core::CoreError) -> Self {
        NetError::Core(e)
    }
}

impl From<crowd_agg::AggError> for NetError {
    fn from(e: crowd_agg::AggError) -> Self {
        NetError::Agg(e)
    }
}

impl From<crowd_learning::LearningError> for NetError {
    fn from(e: crowd_learning::LearningError) -> Self {
        NetError::Core(crowd_core::CoreError::Learning(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_proto::message::ErrorCode;

    #[test]
    fn display_and_sources() {
        let io: NetError = std::io::Error::other("socket").into();
        assert!(io.to_string().contains("socket"));
        assert!(std::error::Error::source(&io).is_some());
        let proto: NetError = crowd_proto::ProtoError::UnknownMessageTag(9).into();
        assert!(proto.to_string().contains("protocol"));
        let core: NetError = crowd_core::CoreError::Config("bad".into()).into();
        assert!(core.to_string().contains("bad"));
        let server = NetError::ServerError {
            code: ErrorCode::Unauthorized,
            detail: "token mismatch".into(),
        };
        assert!(server.to_string().contains("token mismatch"));
        let unexpected = NetError::UnexpectedMessage {
            expected: "checkout_response",
            received: "checkin_ack",
        };
        assert!(unexpected.to_string().contains("checkout_response"));
        assert!(std::error::Error::source(&unexpected).is_none());
    }
}
