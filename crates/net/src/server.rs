//! Threaded TCP server hosting Server Routines 1–2 on top of the `crowd-agg`
//! aggregation runtime.
//!
//! Every accepted connection gets its own handler thread, but — unlike the
//! original single-mutex design — handlers never serialize on a global
//! `Mutex<Server>`: checkouts clone the runtime's epoch snapshot (no lock on
//! the write path), checkins are admitted into the runtime's bounded ingest
//! queue and accumulated on per-device shards, and a full queue is answered
//! with a `Busy` reply carrying a retry hint instead of piling up threads.
//! Devices are authenticated against a [`TokenRegistry`] before any parameters
//! are served or gradients accepted. Request handling itself lives in
//! [`crate::service::ServerCore`], shared with the event-driven
//! [`crate::reactor_server::ReactorServer`].
//!
//! The accept loop parks in a [`polling::Poller`] wait on the nonblocking
//! listener; [`NetServerHandle`] wakes it with [`polling::Poller::notify`] on
//! shutdown. The wake is an in-process edge — no self-connection racing
//! against concurrent client connects, no poll-sleep latency — so shutdown is
//! deterministic even while new connections are hammering the listener.
//! Finished handler threads are reaped as connections close, so a long-lived
//! server does not accumulate one `JoinHandle` per connection it ever served.

use crate::service::ServerCore;
use crate::Result;
use crowd_agg::{AggError, AggRuntime};
use crowd_core::config::ServerConfig;
use crowd_core::server::Server;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use crowd_proto::auth::TokenRegistry;
use crowd_proto::codec::decode;
use crowd_proto::frame::{write_message_pooled, DEFAULT_MAX_FRAME};
use crowd_proto::message::Message;
use crowd_store::{RecoveryReport, Store};
use polling::{Event, Events, Poller};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Read timeout on handler sockets, so connections parked in `read_message`
/// notice a server shutdown instead of pinning their thread forever.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Poller key for the accept listener (the only registration in this poller).
const LISTENER_KEY: usize = 0;

struct Shared {
    core: Arc<ServerCore>,
    stop: AtomicBool,
    /// Wakes the accept loop's wait deterministically on shutdown.
    poller: Arc<Poller>,
}

/// The Crowd-ML TCP server.
pub struct NetServer;

/// A handle to a running server: address, shared state, and the accept thread.
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

pub(crate) fn build_runtime(
    model: MulticlassLogistic,
    config: ServerConfig,
) -> Result<(AggRuntime<MulticlassLogistic>, Option<RecoveryReport>)> {
    if config.persist.is_enabled() {
        let (store, server, report) = Store::open(model, config).map_err(AggError::from)?;
        Ok((AggRuntime::with_store(server, Some(store))?, Some(report)))
    } else {
        Ok((AggRuntime::new(Server::new(model, config)?)?, None))
    }
}

impl NetServer {
    /// Starts a server on `127.0.0.1` (ephemeral port) for the given model,
    /// configuration, and device-token registry. The aggregation runtime is
    /// configured by `config.agg` (shard count, queue bound, epoch size, …).
    ///
    /// When `config.persist` names a data directory, the server binds through
    /// the recovery path: the latest snapshot is loaded, the WAL tail replayed
    /// (bitwise-identical state, including the per-device ε ledger), and every
    /// subsequently applied epoch is WAL-logged before its checkins are acked.
    /// [`NetServerHandle::recovery_report`] tells the caller what was found.
    pub fn start(
        model: MulticlassLogistic,
        config: ServerConfig,
        tokens: TokenRegistry,
    ) -> Result<NetServerHandle> {
        let (runtime, recovery) = build_runtime(model, config)?;
        let poller = Arc::new(Poller::new()?);
        let shared = Arc::new(Shared {
            core: Arc::new(ServerCore::new(runtime, tokens)),
            stop: AtomicBool::new(false),
            poller,
        });
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        shared
            .poller
            .add(&listener, Event::readable(LISTENER_KEY))?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("crowd-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(std::io::Error::other)?;
        Ok(NetServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            recovery,
        })
    }
}

struct Handler {
    done: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Joins every handler whose connection has closed, keeping the live ones.
fn reap_finished(handlers: &mut Vec<Handler>) {
    handlers.retain_mut(|h| {
        if h.done.load(Ordering::SeqCst) {
            // The thread has flagged completion, so the join returns at once.
            if let Some(thread) = h.thread.take() {
                let _ = thread.join();
            }
            false
        } else {
            true
        }
    });
}

/// Spawns one handler thread for an accepted connection. On spawn failure
/// (thread exhaustion) the stream is dropped: the device sees a closed
/// connection and retries, which is non-critical per Remark 1 of the paper.
fn spawn_handler(stream: TcpStream, shared: &Arc<Shared>, handlers: &mut Vec<Handler>) {
    let done = Arc::new(AtomicBool::new(false));
    let conn_done = Arc::clone(&done);
    let conn_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("crowd-conn".into())
        .spawn(move || {
            // Per-connection failures only affect that device (Remark 1 of
            // the paper: failed checkouts/checkins are non-critical).
            let _ = handle_connection(stream, conn_shared);
            conn_done.store(true, Ordering::SeqCst);
        });
    if let Ok(thread) = spawned {
        handlers.push(Handler {
            done,
            thread: Some(thread),
        });
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<Handler> = Vec::new();
    let mut events = Events::new();
    'outer: loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Park until the listener is readable or a shutdown notify() lands.
        // The notifier is an in-process wake: unlike the old self-connection
        // it cannot lose a race against concurrent client connects.
        events.clear();
        let waited = shared.poller.wait(&mut events, None);
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if waited.is_err() {
            break;
        }
        // Drain the accept backlog (the listener registration is oneshot, so
        // it stays disarmed while we accept).
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                    shared
                        .core
                        .metrics
                        .incr(crowd_telemetry::CounterId::ConnsAccepted);
                    shared
                        .core
                        .metrics
                        .span(crowd_telemetry::Stage::Accept, u64::from(peer.port()));
                    reap_finished(&mut handlers);
                    spawn_handler(stream, &shared, &mut handlers);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                    // Transient accept failures (e.g. EMFILE under connection
                    // load) are retried, but with a pause — spinning on a
                    // failing accept would pin a core and starve the handlers
                    // whose exits free the descriptors.
                    std::thread::sleep(Duration::from_millis(10));
                    reap_finished(&mut handlers);
                }
            }
        }
        if shared
            .poller
            .modify(&listener, Event::readable(LISTENER_KEY))
            .is_err()
        {
            break;
        }
    }
    let _ = shared.poller.delete(&listener);
    for mut h in handlers {
        if let Some(thread) = h.thread.take() {
            let _ = thread.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) -> Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    loop {
        let message = match read_message_tolerant(&mut stream, &shared)? {
            ConnRead::Message(m) => m,
            // No frame in flight: keep serving unless the server is stopping.
            ConnRead::Idle => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            // EOF or broken pipe: the device closed its connection.
            ConnRead::Closed => return Ok(()),
        };
        let reply = shared.core.handle_message(message);
        write_message_pooled(&mut stream, &reply, &shared.core.pool)?;
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

enum ConnRead {
    Message(Message),
    Idle,
    Closed,
}

enum FillResult {
    Done,
    Idle,
    Eof,
}

/// Fills `buf` from the socket, absorbing read timeouts.
///
/// A timeout with `buf` still empty and `idle_ok` set reports [`FillResult::Idle`]
/// (nothing in flight); a timeout *mid-buffer* keeps reading, because bytes
/// already consumed by a timed-out `read` are gone — treating that as idle
/// would desynchronize the frame stream. Mid-buffer waiting only gives up when
/// the server is stopping.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], idle_ok: bool, shared: &Shared) -> FillResult {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return FillResult::Eof,
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return FillResult::Eof;
                }
                if filled == 0 && idle_ok {
                    return FillResult::Idle;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Hard transport failure: the connection is unusable.
            Err(_) => return FillResult::Eof,
        }
    }
    FillResult::Done
}

/// Reads one framed message, tolerating idle-connection read timeouts without
/// ever losing frame alignment (length prefix and payload are each read to
/// completion across timeouts).
fn read_message_tolerant(stream: &mut TcpStream, shared: &Shared) -> Result<ConnRead> {
    let mut len_buf = [0u8; 4];
    match read_full(stream, &mut len_buf, true, shared) {
        FillResult::Done => {}
        FillResult::Idle => return Ok(ConnRead::Idle),
        FillResult::Eof => return Ok(ConnRead::Closed),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > DEFAULT_MAX_FRAME {
        return Err(crowd_proto::ProtoError::FrameTooLarge {
            declared: len,
            max: DEFAULT_MAX_FRAME,
        }
        .into());
    }
    // Frame payloads land in pooled buffers: the decode reads straight from
    // the reused frame slice, and the buffer returns to the pool afterwards.
    let mut payload = shared.core.pool.take(len);
    match read_full(stream, payload.as_mut_slice(), false, shared) {
        FillResult::Done => Ok(ConnRead::Message(decode(&payload)?)),
        FillResult::Idle | FillResult::Eof => Ok(ConnRead::Closed),
    }
}

impl NetServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server iteration (number of applied epochs).
    pub fn iteration(&self) -> u64 {
        self.shared.core.runtime.iteration()
    }

    /// A copy of the current parameters.
    pub fn params(&self) -> Vector {
        self.shared.core.runtime.params()
    }

    /// Whether the stopping criterion has been met.
    pub fn stopped(&self) -> bool {
        self.shared.core.runtime.stopped()
    }

    /// The total number of samples reported by devices.
    pub fn total_samples(&self) -> u64 {
        self.shared.core.runtime.total_samples()
    }

    /// The privately estimated error rate (Eq. 14), if any samples were reported.
    pub fn error_estimate(&self) -> Option<f64> {
        self.shared.core.runtime.error_estimate()
    }

    /// A snapshot of the server's crowd-scope metrics (`epoch_merges`,
    /// `checkins_applied`, `busy_rejections`, request-latency histograms, …).
    pub fn runtime_stats(&self) -> crowd_telemetry::MetricsSnapshot {
        self.shared.core.runtime.stats()
    }

    /// The live metric registry the server and its aggregation runtime record
    /// into — the same registry a wire [`Message::MetricsRequest`] scrapes.
    pub fn metrics(&self) -> Arc<crowd_telemetry::Registry> {
        Arc::clone(&self.shared.core.metrics)
    }

    /// What the recovery path found at bind time (`None` for volatile servers).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The per-device ε ledger, ascending by device id.
    pub fn budget_ledger(&self) -> Vec<(u64, f64)> {
        self.shared.core.runtime.budget_ledger()
    }

    /// Settles the open cohort round (finalizing pending submissions and
    /// charging their ε) without stopping the server. No-op when rounds are
    /// off or nothing is pending.
    pub fn settle_rounds(&self) {
        self.shared.core.runtime.settle_rounds()
    }

    /// `true` when the device has spent its entire privacy budget.
    pub fn budget_exhausted(&self, device_id: u64) -> bool {
        self.shared.core.runtime.budget_exhausted(device_id)
    }

    /// Signals the accept loop to stop, wakes it, and waits for it (and the
    /// aggregation workers) to finish.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Crash-stops the server, simulating a SIGKILL for recovery testing:
    /// in-flight checkins are dropped unacknowledged and no final flush or
    /// checkpoint snapshot is written. Everything already acknowledged is in
    /// the WAL (appends happen before acks), so a subsequent
    /// [`NetServer::start`] on the same data directory recovers to exactly the
    /// acknowledged state via real snapshot-load + WAL-replay.
    pub fn kill(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.core.runtime.kill();
        if let Some(handle) = self.accept_thread.take() {
            let _ = self.shared.poller.notify();
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Flush the runtime FIRST: any handler blocked on a partially filled
        // epoch gets its outcome and can finish, so the handler joins below
        // cannot stall behind an epoch that would never close.
        self.shared.core.runtime.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            // Wake the poller wait in-process; deterministic even while
            // clients are racing connects against the shutdown.
            let _ = self.shared.poller.notify();
            let _ = handle.join();
        }
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_proto::auth::AuthToken;
    use crowd_proto::frame::{read_message, write_message};
    use crowd_proto::message::{
        BatchCheckinRequest, CheckinAck, CheckinRequest, CheckoutRequest, ErrorCode, ErrorReply,
        GradientPayload,
    };
    use crowd_proto::PROTOCOL_VERSION;

    fn start_test_server() -> (NetServerHandle, AuthToken) {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        (handle, AuthToken::derive(0, 99))
    }

    fn roundtrip(addr: SocketAddr, msg: &Message) -> Message {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, msg).unwrap();
        read_message(&mut stream).unwrap()
    }

    fn checkin_item(device_id: u64, secret: u64, gradient: Vec<f64>) -> CheckinRequest {
        CheckinRequest {
            device_id,
            token: AuthToken::derive(device_id, secret),
            checkout_iteration: 0,
            nonce: 0,
            round_id: 0,
            gradient: GradientPayload::Dense(gradient),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    #[test]
    fn checkout_round_trip_over_tcp() {
        let (handle, token) = start_test_server();
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token,
            }),
        );
        match reply {
            Message::CheckoutResponse(r) => {
                assert_eq!(r.iteration, 0);
                assert_eq!(r.params.len(), 12);
                assert!(!r.stopped);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn bad_token_and_bad_version_rejected() {
        let (handle, _token) = start_test_server();
        let bad_token = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token: AuthToken::derive(0, 12345),
            }),
        );
        assert!(matches!(
            bad_token,
            Message::Error(ErrorReply {
                code: ErrorCode::Unauthorized,
                ..
            })
        ));
        let bad_version = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: 999,
                device_id: 0,
                token: AuthToken::derive(0, 99),
            }),
        );
        assert!(matches!(
            bad_version,
            Message::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                ..
            })
        ));
        handle.shutdown();
    }

    #[test]
    fn unexpected_message_type_is_bad_request() {
        let (handle, _) = start_test_server();
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckinAck(CheckinAck {
                accepted: true,
                iteration: 0,
                stopped: false,
                deduped: false,
            }),
        );
        assert!(matches!(
            reply,
            Message::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                ..
            })
        ));
        handle.shutdown();
    }

    #[test]
    fn handle_reports_state() {
        let (handle, _) = start_test_server();
        assert_eq!(handle.iteration(), 0);
        assert_eq!(handle.total_samples(), 0);
        assert_eq!(handle.error_estimate(), None);
        assert!(!handle.stopped());
        assert_eq!(handle.params().len(), 12);
        handle.shutdown();
    }

    #[test]
    fn checkin_over_tcp_applies_update() {
        let (handle, _) = start_test_server();
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckinRequest(checkin_item(1, 99, vec![0.1; 12])),
        );
        match reply {
            Message::CheckinAck(ack) => {
                assert!(ack.accepted);
                assert_eq!(ack.iteration, 1);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(handle.iteration(), 1);
        assert_eq!(handle.total_samples(), 2);
        assert_eq!(handle.runtime_stats().get("checkins_applied"), 1);
        handle.shutdown();
    }

    #[test]
    fn batch_checkin_from_colocated_devices() {
        let (handle, _) = start_test_server();
        // Devices 1–3 share a frame; device 3 carries a bad token, device 2 a
        // malformed gradient — each item is judged independently.
        let mut bad_token = checkin_item(3, 12345, vec![0.1; 12]);
        bad_token.device_id = 3;
        let batch = Message::BatchCheckinRequest(BatchCheckinRequest {
            items: vec![
                checkin_item(1, 99, vec![0.1; 12]),
                checkin_item(2, 99, vec![0.5; 3]),
                bad_token,
            ],
        });
        let reply = roundtrip(handle.addr(), &batch);
        match reply {
            Message::BatchCheckinAck(ack) => {
                assert_eq!(ack.acks.len(), 3);
                assert!(ack.acks[0].accepted);
                assert_eq!(ack.acks[0].reject, None);
                assert!(!ack.acks[1].accepted);
                assert_eq!(ack.acks[1].reject, Some(ErrorCode::BadRequest));
                assert!(!ack.acks[2].accepted);
                assert_eq!(ack.acks[2].reject, Some(ErrorCode::Unauthorized));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(handle.iteration(), 1);
        handle.shutdown();
    }

    #[test]
    fn slow_frame_straddling_read_timeouts_stays_aligned() {
        // A frame trickling in slower than READ_TIMEOUT must not be mistaken
        // for an idle connection: a mid-frame timeout that discarded consumed
        // bytes would desynchronize the stream and corrupt every later frame.
        let (handle, token) = start_test_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let frame = {
            let payload = crowd_proto::codec::encode(&Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token,
            }));
            let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
            bytes.extend_from_slice(&payload);
            bytes
        };
        // Send the length prefix and payload byte-group by byte-group with
        // gaps comfortably longer than the server's read timeout.
        use std::io::Write;
        for chunk in frame.chunks(frame.len() / 3 + 1) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(READ_TIMEOUT + Duration::from_millis(50));
        }
        match read_message(&mut stream).unwrap() {
            Message::CheckoutResponse(r) => assert_eq!(r.params.len(), 12),
            other => panic!("unexpected reply {other:?}"),
        }
        // The connection is still usable for a second, fast frame.
        write_message(
            &mut stream,
            &Message::CheckinRequest(checkin_item(1, 99, vec![0.1; 12])),
        )
        .unwrap();
        match read_message(&mut stream).unwrap() {
            Message::CheckinAck(ack) => assert!(ack.accepted),
            other => panic!("unexpected reply {other:?}"),
        }
        handle.shutdown();
    }

    use crowd_store::testutil::temp_dir;

    #[test]
    fn kill_and_restart_recovers_state_over_tcp() {
        let dir = temp_dir("restart");
        let config = ServerConfig::new()
            .with_data_dir(&dir)
            .with_snapshot_every(2)
            .with_budget(0.25, f64::INFINITY);
        let tokens = || TokenRegistry::with_derived_tokens(4, 99);
        let model = || MulticlassLogistic::new(4, 3).unwrap();

        let handle = NetServer::start(model(), config.clone(), tokens()).unwrap();
        assert_eq!(handle.recovery_report().map(|r| r.recovered()), Some(false));
        for step in 0..3u64 {
            let reply = roundtrip(
                handle.addr(),
                &Message::CheckinRequest(checkin_item(step % 2, 99, vec![0.1; 12])),
            );
            assert!(matches!(reply, Message::CheckinAck(ack) if ack.accepted));
        }
        let params_at_kill = handle.params();
        let ledger_at_kill = handle.budget_ledger();
        handle.kill();

        // A new server on the same data dir resumes exactly where the acked
        // checkins left it: snapshot load + WAL tail replay.
        let handle = NetServer::start(model(), config, tokens()).unwrap();
        let report = handle.recovery_report().unwrap();
        assert!(report.recovered());
        assert!(report.from_snapshot);
        assert_eq!(report.replayed_epochs, 1);
        assert_eq!(handle.iteration(), 3);
        assert_eq!(handle.params().as_slice(), params_at_kill.as_slice());
        assert_eq!(handle.budget_ledger(), ledger_at_kill);
        // And it keeps serving: a checkout sees the recovered iteration.
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token: AuthToken::derive(0, 99),
            }),
        );
        assert!(matches!(
            reply,
            Message::CheckoutResponse(r) if r.iteration == 3
        ));
        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_device_is_refused_checkout_and_checkin() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        // Two 0.6-ε checkins cross the 1.0 ceiling.
        let config = ServerConfig::new().with_budget(0.6, 1.0);
        let handle = NetServer::start(model, config, tokens).unwrap();
        for step in 0..2u64 {
            let reply = roundtrip(
                handle.addr(),
                &Message::CheckinRequest(checkin_item(1, 99, vec![0.1; 12])),
            );
            assert!(
                matches!(reply, Message::CheckinAck(ack) if ack.accepted),
                "checkin {step} should be accepted"
            );
        }
        assert!(handle.budget_exhausted(1));
        let refused_checkout = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 1,
                token: AuthToken::derive(1, 99),
            }),
        );
        assert!(matches!(
            refused_checkout,
            Message::Error(ErrorReply {
                code: ErrorCode::BudgetExhausted,
                ..
            })
        ));
        let refused_checkin = roundtrip(
            handle.addr(),
            &Message::CheckinRequest(checkin_item(1, 99, vec![0.1; 12])),
        );
        assert!(matches!(
            refused_checkin,
            Message::Error(ErrorReply {
                code: ErrorCode::BudgetExhausted,
                ..
            })
        ));
        // Device 2 is untouched.
        assert!(!handle.budget_exhausted(2));
        let ok = roundtrip(
            handle.addr(),
            &Message::CheckinRequest(checkin_item(2, 99, vec![0.1; 12])),
        );
        assert!(matches!(ok, Message::CheckinAck(ack) if ack.accepted));
        assert_eq!(handle.budget_ledger(), vec![(1, 1.2), (2, 0.6)]);
        handle.shutdown();
    }

    #[test]
    fn full_queue_replies_busy_over_tcp() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        // A queue nothing drains (no workers ever beat a closed epoch of
        // u64::MAX without idle flushes) forces the busy path deterministically.
        let config = ServerConfig::new().with_agg(crowd_core::config::AggSettings {
            shard_count: 1,
            queue_bound: 1,
            epoch_size: u64::MAX,
            worker_threads: 1,
            retry_after_ms: 9,
            flush_idle_ms: 0,
        });
        let handle = NetServer::start(model, config, tokens).unwrap();
        // Saturate from 20 parallel connections. Admitted checkins only
        // resolve at the shutdown flush (the epoch never fills), so replies
        // are read on background threads while the main thread shuts down.
        let mut readers = Vec::new();
        for attempt in 0..20u64 {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            write_message(
                &mut stream,
                &Message::CheckinRequest(checkin_item(attempt % 4, 99, vec![0.1; 12])),
            )
            .unwrap();
            readers.push(std::thread::spawn(move || {
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                read_message(&mut stream).ok()
            }));
        }
        // Give the burst time to hit the 1-deep queue, then flush via shutdown.
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown();
        let mut busy = 0;
        let mut acked = 0;
        for reader in readers {
            match reader.join().unwrap() {
                Some(Message::Busy(b)) => {
                    assert_eq!(b.retry_after_ms, 9);
                    busy += 1;
                }
                Some(Message::CheckinAck(_)) => acked += 1,
                Some(other) => panic!("unexpected reply {other:?}"),
                None => {}
            }
        }
        assert!(
            busy > 0,
            "a 1-deep queue must reject under 20 racing checkins"
        );
        assert!(
            acked > 0,
            "the admitted checkins resolve at the final flush"
        );
    }

    #[test]
    fn shutdown_is_prompt_under_concurrent_connects() {
        // Regression test for the old shutdown wake: a throwaway
        // self-connection could land *behind* a burst of client connects in
        // the accept backlog, leaving shutdown at the mercy of client
        // traffic. The poller notify() is an in-process edge that cannot be
        // displaced, so shutdown must complete promptly even while a client
        // thread is hammering connects the whole time.
        for _round in 0..5 {
            let (handle, _token) = start_test_server();
            let addr = handle.addr();
            let hammer_stop = Arc::new(AtomicBool::new(false));
            let hammer_flag = Arc::clone(&hammer_stop);
            let hammer = std::thread::spawn(move || {
                let mut opened = Vec::new();
                while !hammer_flag.load(Ordering::SeqCst) {
                    // Keep a rolling window of idle connections plus a steady
                    // stream of fresh ones, exactly the traffic shape that
                    // raced the old self-connect wake.
                    if let Ok(stream) = TcpStream::connect(addr) {
                        opened.push(stream);
                        if opened.len() > 8 {
                            opened.remove(0);
                        }
                    }
                }
            });
            // The shutdown must not wait for the hammer to stop. Run it on
            // its own thread and bound the wait with a channel timeout (no
            // wallclock reads needed).
            let (done_tx, done_rx) = std::sync::mpsc::channel();
            let closer = std::thread::spawn(move || {
                handle.shutdown();
                let _ = done_tx.send(());
            });
            done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("shutdown stalled behind concurrent client connects");
            hammer_stop.store(true, Ordering::SeqCst);
            let _ = hammer.join();
            let _ = closer.join();
        }
    }
}
