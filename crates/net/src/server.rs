//! Threaded TCP server hosting Server Routines 1–2.
//!
//! Every accepted connection gets its own handler thread; the shared Crowd-ML
//! [`Server`] state sits behind a `parking_lot::Mutex`, mirroring the paper's
//! single central server that serializes parameter updates (Server Routine 2 is a
//! sequential `w ← w − η(t)ĝ` loop). Devices are authenticated against a
//! [`TokenRegistry`] before any parameters are served or gradients accepted.

use crate::Result;
use crowd_core::config::ServerConfig;
use crowd_core::device::CheckinPayload;
use crowd_core::server::Server;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use crowd_proto::auth::TokenRegistry;
use crowd_proto::frame::{read_message, write_message};
use crowd_proto::message::{CheckinAck, CheckoutResponse, ErrorCode, ErrorReply, Message};
use crowd_proto::PROTOCOL_VERSION;
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct Shared {
    server: Mutex<Server<MulticlassLogistic>>,
    tokens: TokenRegistry,
    stop: AtomicBool,
}

/// The Crowd-ML TCP server.
pub struct NetServer;

/// A handle to a running server: address, shared state, and the accept thread.
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Starts a server on `127.0.0.1` (ephemeral port) for the given model,
    /// configuration, and device-token registry.
    pub fn start(
        model: MulticlassLogistic,
        config: ServerConfig,
        tokens: TokenRegistry,
    ) -> Result<NetServerHandle> {
        let core_server = Server::new(model, config)?;
        let shared = Arc::new(Shared {
            server: Mutex::new(core_server),
            tokens,
            stop: AtomicBool::new(false),
        });
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        // A short accept timeout lets the loop notice the stop flag promptly.
        listener.set_nonblocking(false)?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Use a polling accept so shutdown() can terminate the loop.
    listener
        .set_nonblocking(true)
        .expect("listener supports non-blocking mode");
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    // Per-connection failures only affect that device (Remark 1 of
                    // the paper: failed checkouts/checkins are non-critical).
                    let _ = handle_connection(stream, conn_shared);
                }));
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) -> Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        let message = match read_message(&mut stream) {
            Ok(m) => m,
            // EOF or broken pipe: the device closed its connection.
            Err(crowd_proto::ProtoError::Io(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let reply = handle_message(&shared, message);
        write_message(&mut stream, &reply)?;
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn handle_message(shared: &Shared, message: Message) -> Message {
    match message {
        Message::CheckoutRequest(req) => {
            if req.version != PROTOCOL_VERSION {
                return error_reply(
                    ErrorCode::BadRequest,
                    format!("unsupported protocol version {}", req.version),
                );
            }
            if !shared.tokens.verify(req.device_id, &req.token) {
                return error_reply(ErrorCode::Unauthorized, "unknown device or bad token");
            }
            let server = shared.server.lock();
            let ticket = server.checkout();
            Message::CheckoutResponse(CheckoutResponse {
                iteration: ticket.iteration,
                params: ticket.params.into_vec(),
                stopped: ticket.stopped,
            })
        }
        Message::CheckinRequest(req) => {
            if !shared.tokens.verify(req.device_id, &req.token) {
                return error_reply(ErrorCode::Unauthorized, "unknown device or bad token");
            }
            let payload = CheckinPayload {
                device_id: req.device_id,
                checkout_iteration: req.checkout_iteration,
                gradient: Vector::from_vec(req.gradient),
                num_samples: req.num_samples as usize,
                error_count: req.error_count,
                label_counts: req.label_counts,
            };
            let mut server = shared.server.lock();
            match server.checkin(&payload) {
                Ok(outcome) => Message::CheckinAck(CheckinAck {
                    accepted: outcome.accepted,
                    iteration: outcome.iteration,
                    stopped: outcome.stopped,
                }),
                Err(e) => error_reply(ErrorCode::BadRequest, e.to_string()),
            }
        }
        other => error_reply(
            ErrorCode::BadRequest,
            format!("unexpected message {}", other.name()),
        ),
    }
}

fn error_reply(code: ErrorCode, detail: impl Into<String>) -> Message {
    Message::Error(ErrorReply {
        code,
        detail: detail.into(),
    })
}

impl NetServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server iteration (number of applied checkins).
    pub fn iteration(&self) -> u64 {
        self.shared.server.lock().iteration()
    }

    /// A copy of the current parameters.
    pub fn params(&self) -> Vector {
        self.shared.server.lock().params().clone()
    }

    /// Whether the stopping criterion has been met.
    pub fn stopped(&self) -> bool {
        self.shared.server.lock().stopped()
    }

    /// The total number of samples reported by devices.
    pub fn total_samples(&self) -> u64 {
        self.shared.server.lock().total_samples()
    }

    /// The privately estimated error rate (Eq. 14), if any samples were reported.
    pub fn error_estimate(&self) -> Option<f64> {
        self.shared.server.lock().error_estimate()
    }

    /// Signals the accept loop to stop and waits for it to finish.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_proto::auth::AuthToken;
    use crowd_proto::message::CheckoutRequest;

    fn start_test_server() -> (NetServerHandle, AuthToken) {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(4, 99);
        let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
        (handle, AuthToken::derive(0, 99))
    }

    fn roundtrip(addr: SocketAddr, msg: &Message) -> Message {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, msg).unwrap();
        read_message(&mut stream).unwrap()
    }

    #[test]
    fn checkout_round_trip_over_tcp() {
        let (handle, token) = start_test_server();
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token,
            }),
        );
        match reply {
            Message::CheckoutResponse(r) => {
                assert_eq!(r.iteration, 0);
                assert_eq!(r.params.len(), 12);
                assert!(!r.stopped);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn bad_token_and_bad_version_rejected() {
        let (handle, _token) = start_test_server();
        let bad_token = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: PROTOCOL_VERSION,
                device_id: 0,
                token: AuthToken::derive(0, 12345),
            }),
        );
        assert!(matches!(
            bad_token,
            Message::Error(ErrorReply {
                code: ErrorCode::Unauthorized,
                ..
            })
        ));
        let bad_version = roundtrip(
            handle.addr(),
            &Message::CheckoutRequest(CheckoutRequest {
                version: 999,
                device_id: 0,
                token: AuthToken::derive(0, 99),
            }),
        );
        assert!(matches!(
            bad_version,
            Message::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                ..
            })
        ));
        handle.shutdown();
    }

    #[test]
    fn unexpected_message_type_is_bad_request() {
        let (handle, _) = start_test_server();
        let reply = roundtrip(
            handle.addr(),
            &Message::CheckinAck(CheckinAck {
                accepted: true,
                iteration: 0,
                stopped: false,
            }),
        );
        assert!(matches!(
            reply,
            Message::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                ..
            })
        ));
        handle.shutdown();
    }

    #[test]
    fn handle_reports_state() {
        let (handle, _) = start_test_server();
        assert_eq!(handle.iteration(), 0);
        assert_eq!(handle.total_samples(), 0);
        assert_eq!(handle.error_estimate(), None);
        assert!(!handle.stopped());
        assert_eq!(handle.params().len(), 12);
        handle.shutdown();
    }
}
