//! Transport-independent request handling shared by the threaded
//! [`crate::server::NetServer`] and the event-driven
//! [`crate::reactor_server::ReactorServer`].
//!
//! Both servers authenticate against the same [`TokenRegistry`], serve the
//! same [`AggRuntime`], and produce byte-identical replies; only the I/O model
//! differs. The blocking entry point ([`ServerCore::handle_message`]) waits
//! for checkin completions inline; the event entry point ([`handle_event`])
//! maps the same requests onto [`crowd_reactor::Response`] so a reactor
//! thread never blocks: checkouts answer immediately, checkin completions
//! resolve on the completion pump, and a full ingest queue *parks* the
//! connection (read throttling) instead of emitting a Busy reply.

use crowd_agg::{AggError, AggRuntime, CompletionHandle, RoundSubmitOutcome, SubmitRejection};
use crowd_core::device::CheckinPayload;
use crowd_core::server::PendingSubmission;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::{GradientUpdate, QuantizedVector, SparseVector, Vector};
use crowd_proto::auth::TokenRegistry;
use crowd_proto::message::{
    BatchAck, BatchCheckinAck, BusyReply, CheckinAck, CheckinRequest, CheckoutResponse, ErrorCode,
    ErrorReply, GradientPayload, HistogramReport, Message, MetricsReport, RoundParams,
};
use crowd_proto::{BufPool, PROTOCOL_VERSION};
use crowd_reactor::Response;
use crowd_telemetry::{CounterId, HistogramId, MetricsSnapshot, Registry};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking handler (or the completion pump) waits for a queued
/// checkin's epoch to be applied before reporting an internal error. Epochs
/// close on `epoch_size` or the idle flush, so in practice this bound is
/// never approached.
pub(crate) const CHECKIN_WAIT: Duration = Duration::from_secs(30);

/// Server state shared by every connection, independent of transport.
pub(crate) struct ServerCore {
    pub(crate) runtime: AggRuntime<MulticlassLogistic>,
    pub(crate) tokens: TokenRegistry,
    /// Frame buffers shared by every connection: payload reads and reply
    /// encodes reuse pooled storage instead of allocating per message.
    pub(crate) pool: Arc<BufPool>,
    /// The aggregation runtime's crowd-scope registry, shared so the serving
    /// layer's own counters and per-message-type latency land in the same
    /// scrape the `MetricsRequest` admin message answers from.
    pub(crate) metrics: Arc<Registry>,
}

impl ServerCore {
    pub(crate) fn new(runtime: AggRuntime<MulticlassLogistic>, tokens: TokenRegistry) -> Self {
        let metrics = runtime.metrics();
        ServerCore {
            runtime,
            tokens,
            pool: Arc::new(BufPool::default()),
            metrics,
        }
    }

    /// Handles one request, blocking until the reply is known. Used by the
    /// thread-per-connection server and (for batch requests) the reactor's
    /// completion pump. Request latency is recorded per message type.
    pub(crate) fn handle_message(&self, message: Message) -> Message {
        let hist = match &message {
            Message::CheckoutRequest(_) => Some(HistogramId::ReqCheckoutUs),
            Message::CheckinRequest(_) => Some(HistogramId::ReqCheckinUs),
            Message::BatchCheckinRequest(_) => Some(HistogramId::ReqBatchCheckinUs),
            Message::MetricsRequest(_) => Some(HistogramId::ReqMetricsUs),
            _ => None,
        };
        let start = self.metrics.start();
        let reply = self.dispatch(message);
        if let Some(id) = hist {
            self.metrics.observe_since(id, start);
        }
        reply
    }

    fn dispatch(&self, message: Message) -> Message {
        match message {
            Message::CheckoutRequest(req) => {
                if req.version != PROTOCOL_VERSION {
                    return error_reply(
                        ErrorCode::BadRequest,
                        format!("unsupported protocol version {}", req.version),
                    );
                }
                if !self.tokens.verify(req.device_id, &req.token) {
                    return error_reply(ErrorCode::Unauthorized, "unknown device or bad token");
                }
                // Refusing the *checkout* is where over-querying is actually
                // prevented: a device that cannot read parameters computes no
                // further gradients on its own ε.
                if self.runtime.budget_exhausted(req.device_id) {
                    self.metrics.incr(CounterId::ExhaustionRefusals);
                    return error_reply(
                        ErrorCode::BudgetExhausted,
                        format!("device {} has exhausted its privacy budget", req.device_id),
                    );
                }
                // Lock-free read path: clone the epoch snapshot, never touching
                // the write path's locks.
                let snapshot = self.runtime.snapshot();
                self.metrics.incr(CounterId::CheckoutsServed);
                Message::CheckoutResponse(CheckoutResponse {
                    iteration: snapshot.iteration,
                    params: snapshot.params.as_slice().to_vec(),
                    stopped: snapshot.stopped,
                    round: self.round_params(),
                })
            }
            Message::CheckinRequest(req) => {
                if !self.tokens.verify(req.device_id, &req.token) {
                    return error_reply(ErrorCode::Unauthorized, "unknown device or bad token");
                }
                note_gradient_encoding(&self.metrics, &req.gradient);
                if matches!(req.gradient, GradientPayload::Masked { .. }) {
                    return self.round_checkin(req);
                }
                if let Some(reply) = self.stale_round_reply(req.round_id) {
                    return reply;
                }
                let payload = match payload_of(req) {
                    Ok(p) => p,
                    Err(reply) => return *reply,
                };
                match self.runtime.submit(payload) {
                    Ok(handle) => match wait_ack(handle) {
                        Ok(ack) => Message::CheckinAck(ack),
                        Err(reply) => *reply,
                    },
                    Err(e) => agg_error_reply(e),
                }
            }
            Message::BatchCheckinRequest(req) => {
                // Admit every item before waiting on any of them, so a batch
                // fills at most one epoch's worth of queue slots at a time and
                // the runtime can fold co-submitted gradients into shared
                // epochs.
                let submitted: Vec<std::result::Result<CompletionHandle, Box<Message>>> = req
                    .items
                    .into_iter()
                    .map(|item| {
                        if !self.tokens.verify(item.device_id, &item.token) {
                            return Err(Box::new(error_reply(
                                ErrorCode::Unauthorized,
                                "unknown device or bad token",
                            )));
                        }
                        note_gradient_encoding(&self.metrics, &item.gradient);
                        if matches!(item.gradient, GradientPayload::Masked { .. }) {
                            // Round submissions resolve synchronously; the
                            // reply (ack or refusal) is folded in positionally.
                            return Err(Box::new(self.round_checkin(item)));
                        }
                        if let Some(reply) = self.stale_round_reply(item.round_id) {
                            return Err(Box::new(reply));
                        }
                        self.runtime
                            .submit(payload_of(item)?)
                            .map_err(|e| Box::new(agg_error_reply(e)))
                    })
                    .collect();
                let acks = submitted
                    .into_iter()
                    .map(|entry| match entry {
                        Ok(handle) => match wait_ack(handle) {
                            Ok(ack) => BatchAck {
                                accepted: ack.accepted,
                                iteration: ack.iteration,
                                stopped: ack.stopped,
                                deduped: ack.deduped,
                                reject: None,
                            },
                            Err(reply) => batch_ack_of(&reply),
                        },
                        Err(reply) => batch_ack_of(&reply),
                    })
                    .collect();
                Message::BatchCheckinAck(BatchCheckinAck { acks })
            }
            Message::MetricsRequest(req) => {
                if req.version != PROTOCOL_VERSION {
                    return error_reply(
                        ErrorCode::BadRequest,
                        format!("unsupported protocol version {}", req.version),
                    );
                }
                // The scrape is authenticated exactly like a checkout: any
                // registered device (an operator holds one) may read the
                // registry, which carries no per-device training data.
                if !self.tokens.verify(req.device_id, &req.token) {
                    return error_reply(ErrorCode::Unauthorized, "unknown device or bad token");
                }
                Message::MetricsReport(metrics_report(&self.runtime.stats()))
            }
            other => error_reply(
                ErrorCode::BadRequest,
                format!("unexpected message {}", other.name()),
            ),
        }
    }

    /// The current round parameters, as published in every checkout when the
    /// server runs the round-based cohort protocol (wire v6).
    fn round_params(&self) -> Option<RoundParams> {
        self.runtime.round_info().map(|info| RoundParams {
            round_id: info.round_id,
            seed: info.seed,
            select_fraction: info.select_fraction,
            deadline_epochs: info.deadline_epochs,
            population: info.population,
        })
    }

    /// Handles a round submission (a masked checkin): the gradient is recorded
    /// against the round it names and applied at round finalization, so the
    /// acknowledgement is immediate — no epoch wait.
    pub(crate) fn round_checkin(&self, req: CheckinRequest) -> Message {
        let GradientPayload::Masked { words } = req.gradient else {
            return error_reply(ErrorCode::Internal, "round_checkin on an unmasked gradient");
        };
        if req.round_id == 0 {
            return error_reply(
                ErrorCode::BadRequest,
                "a masked checkin must name the round it contributes to",
            );
        }
        let submission = PendingSubmission {
            device_id: req.device_id,
            nonce: req.nonce,
            checkout_iteration: req.checkout_iteration,
            words,
            num_samples: req.num_samples,
            error_count: req.error_count,
            label_counts: req.label_counts,
        };
        match self.runtime.submit_round(req.round_id, submission) {
            Ok(RoundSubmitOutcome::Acked(outcome)) => Message::CheckinAck(CheckinAck {
                accepted: outcome.accepted,
                iteration: outcome.iteration,
                stopped: outcome.stopped,
                deduped: outcome.deduped,
            }),
            Ok(RoundSubmitOutcome::Outdated { current_round }) => {
                round_outdated_reply(current_round)
            }
            Err(e) => agg_error_reply(e),
        }
    }

    /// Refuses a free-run checkin tagged with a round other than the server's
    /// current one: the device's protocol view is stale and it must refetch
    /// the round parameters. `round_id == 0` opts out of the check, and the
    /// tag is meaningless (not stale) when rounds are disabled.
    fn stale_round_reply(&self, round_id: u64) -> Option<Message> {
        if round_id == 0 {
            return None;
        }
        match self.runtime.round_info() {
            Some(info) if info.round_id != round_id => {
                self.metrics.incr(CounterId::RoundOutdatedRejections);
                Some(round_outdated_reply(info.round_id))
            }
            _ => None,
        }
    }
}

/// Builds the wire scrape reply from a registry snapshot: every counter and
/// gauge verbatim, histograms reduced to count/sum/max plus the four summary
/// quantiles. Sections stay name-sorted (the snapshot's order), so identical
/// registries encode byte-identically.
pub(crate) fn metrics_report(snap: &MetricsSnapshot) -> MetricsReport {
    MetricsReport {
        counters: snap
            .counters()
            .iter()
            .map(|&(name, v)| (name.to_string(), v))
            .collect(),
        gauges: snap
            .gauges()
            .iter()
            .map(|&(name, v)| (name.to_string(), v))
            .collect(),
        histograms: snap
            .histograms()
            .iter()
            .map(|(name, bins)| HistogramReport {
                name: name.to_string(),
                count: bins.count(),
                sum: bins.sum(),
                max: bins.max(),
                p50: bins.p50(),
                p90: bins.p90(),
                p99: bins.p99(),
                p999: bins.p999(),
            })
            .collect(),
    }
}

/// Handles one request for the reactor without ever blocking the event loop.
///
/// * Checkouts (and malformed traffic) answer inline — they only clone the
///   epoch snapshot.
/// * Checkins are admitted to the ingest queue here; the wait for the applied
///   epoch becomes a [`Response::Pending`] closure on the completion pump.
/// * A full queue becomes [`Response::Throttle`]: the payload is parked (the
///   decoded request is handed back by the runtime) and re-admission is
///   probed by the reactor while the connection's reads stay disarmed. The
///   device never sees a Busy reply on this path — it sees a quiet socket.
/// * Batch checkins block on their epochs, so they run wholesale on the pump.
pub(crate) fn handle_event(core: &Arc<ServerCore>, message: Message) -> Response {
    match message {
        Message::CheckinRequest(req) => {
            if !core.tokens.verify(req.device_id, &req.token) {
                return Response::Now(error_reply(
                    ErrorCode::Unauthorized,
                    "unknown device or bad token",
                ));
            }
            note_gradient_encoding(&core.metrics, &req.gradient);
            if matches!(req.gradient, GradientPayload::Masked { .. }) {
                // A round submission locks the aggregation core synchronously
                // (and may finalize an epoch when it completes the cohort), so
                // it runs on the completion pump, never the event loop.
                let core = Arc::clone(core);
                return Response::Pending(Box::new(move || core.round_checkin(req)));
            }
            if let Some(reply) = core.stale_round_reply(req.round_id) {
                return Response::Now(reply);
            }
            let payload = match payload_of(req) {
                Ok(p) => p,
                Err(reply) => return Response::Now(*reply),
            };
            submit_event(core, payload)
        }
        Message::BatchCheckinRequest(_) => {
            let core = Arc::clone(core);
            Response::Pending(Box::new(move || core.handle_message(message)))
        }
        other => Response::Now(core.handle_message(other)),
    }
}

/// Turns a completion handle into a pump-side reply closure.
fn pending_ack(handle: CompletionHandle) -> Response {
    Response::Pending(Box::new(move || match wait_ack(handle) {
        Ok(ack) => Message::CheckinAck(ack),
        Err(reply) => *reply,
    }))
}

fn submit_event(core: &Arc<ServerCore>, payload: CheckinPayload) -> Response {
    match core.runtime.submit_or_return(payload) {
        Ok(handle) => pending_ack(handle),
        Err(SubmitRejection::Busy {
            payload,
            retry_after_ms,
        }) => {
            // Backpressure: park the decoded payload and let the reactor
            // probe re-admission. The dedup reservation was released by
            // `submit_or_return`, so each probe is admitted fresh.
            let core = Arc::clone(core);
            let mut parked = Some(payload);
            Response::Throttle {
                retry_after_ms,
                retry: Box::new(move || {
                    let payload = parked.take()?;
                    match core.runtime.submit_or_return(payload) {
                        Ok(handle) => Some(pending_ack(handle)),
                        Err(SubmitRejection::Busy { payload, .. }) => {
                            parked = Some(payload);
                            None
                        }
                        Err(SubmitRejection::Refused(e)) => Some(Response::Now(agg_error_reply(e))),
                    }
                }),
            }
        }
        Err(SubmitRejection::Refused(e)) => Response::Now(agg_error_reply(e)),
    }
}

/// Counts a checkin's gradient encoding: quantized uploads bump
/// `quantized_checkins` and credit `quantized_bytes_saved` with the wire bytes
/// the encoding avoided relative to a dense body of the same dimension.
pub(crate) fn note_gradient_encoding(metrics: &Registry, gradient: &GradientPayload) {
    if let GradientPayload::Quantized { levels, .. } = gradient {
        metrics.incr(CounterId::QuantizedCheckins);
        let dense_len = 1 + 4 + 8 * levels.len();
        metrics.add(
            CounterId::QuantizedBytesSaved,
            (dense_len.saturating_sub(gradient.encoded_len())) as u64,
        );
    }
}

/// Converts a decoded checkin into the runtime payload without copying the
/// gradient — a sparse upload stays sparse all the way to the shard
/// accumulators. Re-validation of the sparse structure (the codec already
/// checked it) costs O(nnz) and turns a hand-crafted bad payload into a
/// `BadRequest` reply instead of trusting the transport. The error reply is
/// boxed to keep the happy path's `Result` small.
pub(crate) fn payload_of(req: CheckinRequest) -> std::result::Result<CheckinPayload, Box<Message>> {
    let gradient = match req.gradient {
        GradientPayload::Dense(values) => GradientUpdate::Dense(Vector::from_vec(values)),
        GradientPayload::Sparse {
            dim,
            indices,
            values,
        } => match SparseVector::new(dim as usize, indices, values) {
            Ok(sparse) => GradientUpdate::Sparse(sparse),
            Err(e) => return Err(Box::new(error_reply(ErrorCode::BadRequest, e.to_string()))),
        },
        GradientPayload::Quantized { scale, levels } => {
            match QuantizedVector::from_parts(scale, levels) {
                Ok(q) => GradientUpdate::Quantized(q),
                Err(e) => return Err(Box::new(error_reply(ErrorCode::BadRequest, e.to_string()))),
            }
        }
        GradientPayload::Masked { .. } => {
            // Masked gradients are round submissions; callers route them to
            // `ServerCore::round_checkin` before building a free-run payload.
            return Err(Box::new(error_reply(
                ErrorCode::BadRequest,
                "a masked gradient is only valid as a round submission",
            )));
        }
    };
    Ok(CheckinPayload {
        device_id: req.device_id,
        checkout_iteration: req.checkout_iteration,
        nonce: req.nonce,
        gradient,
        num_samples: req.num_samples as usize,
        error_count: req.error_count,
        label_counts: req.label_counts,
    })
}

pub(crate) fn wait_ack(handle: CompletionHandle) -> std::result::Result<CheckinAck, Box<Message>> {
    match handle.wait_timeout(CHECKIN_WAIT) {
        Ok(outcome) => Ok(CheckinAck {
            accepted: outcome.accepted,
            iteration: outcome.iteration,
            stopped: outcome.stopped,
            deduped: outcome.deduped,
        }),
        Err(e) => Err(Box::new(agg_error_reply(e))),
    }
}

/// Maps a runtime refusal to its wire reply: backpressure becomes `Busy`,
/// everything else an `Error`.
pub(crate) fn agg_error_reply(e: AggError) -> Message {
    match e {
        AggError::Busy { retry_after_ms } => Message::Busy(BusyReply { retry_after_ms }),
        AggError::Invalid(detail) => error_reply(ErrorCode::BadRequest, detail),
        AggError::ShuttingDown => error_reply(ErrorCode::TaskEnded, "server is shutting down"),
        AggError::Timeout => error_reply(ErrorCode::Internal, "epoch application timed out"),
        AggError::BudgetExhausted { device_id } => error_reply(
            ErrorCode::BudgetExhausted,
            format!("device {device_id} has exhausted its privacy budget"),
        ),
        AggError::Core(e) => error_reply(ErrorCode::Internal, e.to_string()),
        AggError::Store(e) => error_reply(ErrorCode::Internal, e.to_string()),
    }
}

/// Collapses a refusal reply into a per-item batch acknowledgement.
pub(crate) fn rejected_ack(reply: &Message) -> BatchAck {
    let reject = match reply {
        Message::Busy(_) => ErrorCode::Busy,
        Message::Error(e) => e.code,
        _ => ErrorCode::Internal,
    };
    BatchAck {
        accepted: false,
        iteration: 0,
        stopped: false,
        deduped: false,
        reject: Some(reject),
    }
}

/// Folds any per-item reply into a batch acknowledgement: a checkin ack (a
/// synchronously resolved round submission) positionally as-is, a refusal via
/// [`rejected_ack`].
pub(crate) fn batch_ack_of(reply: &Message) -> BatchAck {
    match reply {
        Message::CheckinAck(ack) => BatchAck {
            accepted: ack.accepted,
            iteration: ack.iteration,
            stopped: ack.stopped,
            deduped: ack.deduped,
            reject: None,
        },
        _ => rejected_ack(reply),
    }
}

pub(crate) fn error_reply(code: ErrorCode, detail: impl Into<String>) -> Message {
    Message::Error(ErrorReply {
        code,
        detail: detail.into(),
        round_id: 0,
    })
}

/// The refusal for a checkin against a closed round, carrying the server's
/// *current* round id so the stale device can resync without an extra
/// checkout round-trip.
pub(crate) fn round_outdated_reply(current_round: u64) -> Message {
    Message::Error(ErrorReply {
        code: ErrorCode::RoundOutdated,
        detail: format!("round closed; the current round is {current_round}"),
        round_id: current_round,
    })
}
