//! Partitioning a dataset across `M` simulated devices.
//!
//! The paper's simulated experiments assign the training set to `M = 1000` devices
//! ("each device has 60 training and 10 test samples on average", §V-C), which is
//! an IID partition. Real crowdsensing deployments are rarely IID, so we also
//! provide a label-skew shard partitioner and a Dirichlet partitioner — the two
//! standard non-IID models in the federated-learning literature — for ablations.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::Result;
use rand::Rng;

/// How to divide samples across devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// Shuffle, then deal samples round-robin: every device sees (close to) the
    /// global class distribution. This is the paper's setting.
    Iid,
    /// Sort by label into shards and give each device `shards_per_device`
    /// contiguous shards, so each device sees only a few classes.
    LabelShards {
        /// Number of label-sorted shards handed to each device.
        shards_per_device: usize,
    },
    /// Draw each device's class mixture from a symmetric Dirichlet(α) and assign
    /// samples accordingly. Small α → highly skewed devices.
    Dirichlet {
        /// Concentration parameter α (must be positive).
        alpha: f64,
    },
}

/// Partitions `data` into `num_devices` per-device datasets.
///
/// Every sample is assigned to exactly one device; devices may end up with
/// slightly different sizes. Errors if `num_devices` is zero or the strategy
/// parameters are invalid.
pub fn partition<R: Rng + ?Sized>(
    data: &Dataset,
    num_devices: usize,
    strategy: PartitionStrategy,
    rng: &mut R,
) -> Result<Vec<Dataset>> {
    if num_devices == 0 {
        return Err(DataError::InvalidArgument(
            "num_devices must be positive".into(),
        ));
    }
    match strategy {
        PartitionStrategy::Iid => partition_iid(data, num_devices, rng),
        PartitionStrategy::LabelShards { shards_per_device } => {
            partition_label_shards(data, num_devices, shards_per_device, rng)
        }
        PartitionStrategy::Dirichlet { alpha } => {
            partition_dirichlet(data, num_devices, alpha, rng)
        }
    }
}

fn empty_partitions(data: &Dataset, num_devices: usize) -> Result<Vec<Dataset>> {
    (0..num_devices)
        .map(|_| Dataset::empty(data.dim(), data.num_classes()))
        .collect()
}

fn partition_iid<R: Rng + ?Sized>(
    data: &Dataset,
    num_devices: usize,
    rng: &mut R,
) -> Result<Vec<Dataset>> {
    let mut indices: Vec<usize> = (0..data.len()).collect();
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    let mut parts = empty_partitions(data, num_devices)?;
    for (pos, &idx) in indices.iter().enumerate() {
        parts[pos % num_devices].push(data.get(idx).clone())?;
    }
    Ok(parts)
}

fn partition_label_shards<R: Rng + ?Sized>(
    data: &Dataset,
    num_devices: usize,
    shards_per_device: usize,
    rng: &mut R,
) -> Result<Vec<Dataset>> {
    if shards_per_device == 0 {
        return Err(DataError::InvalidArgument(
            "shards_per_device must be positive".into(),
        ));
    }
    // Sort indices by label, split into equal shards, deal shards to devices.
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.sort_by_key(|&i| data.get(i).label);
    let num_shards = num_devices * shards_per_device;
    let shard_size = (data.len() + num_shards - 1) / num_shards.max(1);
    let mut shards: Vec<Vec<usize>> = indices
        .chunks(shard_size.max(1))
        .map(|c| c.to_vec())
        .collect();
    // Shuffle shard order before dealing.
    for i in (1..shards.len()).rev() {
        let j = rng.gen_range(0..=i);
        shards.swap(i, j);
    }
    let mut parts = empty_partitions(data, num_devices)?;
    for (s, shard) in shards.into_iter().enumerate() {
        let device = s % num_devices;
        for idx in shard {
            parts[device].push(data.get(idx).clone())?;
        }
    }
    Ok(parts)
}

fn partition_dirichlet<R: Rng + ?Sized>(
    data: &Dataset,
    num_devices: usize,
    alpha: f64,
    rng: &mut R,
) -> Result<Vec<Dataset>> {
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err(DataError::InvalidArgument(format!(
            "dirichlet alpha {alpha} must be positive"
        )));
    }
    let num_classes = data.num_classes();
    // For each class, draw a Dirichlet(α) split over devices and assign that
    // class's samples proportionally.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, s) in data.iter().enumerate() {
        by_class[s.label].push(i);
    }
    let mut parts = empty_partitions(data, num_devices)?;
    for class_indices in by_class {
        if class_indices.is_empty() {
            continue;
        }
        let weights = sample_dirichlet(rng, alpha, num_devices);
        // Convert weights to cumulative boundaries over the class's samples.
        let n = class_indices.len();
        let mut assigned = 0usize;
        for (device, w) in weights.iter().enumerate() {
            let take = if device + 1 == num_devices {
                n - assigned
            } else {
                ((w * n as f64).round() as usize).min(n - assigned)
            };
            for &idx in &class_indices[assigned..assigned + take] {
                parts[device].push(data.get(idx).clone())?;
            }
            assigned += take;
            if assigned >= n {
                break;
            }
        }
    }
    Ok(parts)
}

/// Samples a symmetric Dirichlet(α) vector of length `k` using the Gamma
/// marginal representation with Marsaglia–Tsang for α ≥ 1 and the boost trick for
/// α < 1.
fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    let mut gammas: Vec<f64> = (0..k).map(|_| sample_gamma(rng, alpha)).collect();
    let sum: f64 = gammas.iter().sum();
    if sum <= 0.0 {
        // Degenerate draw; fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    for g in &mut gammas {
        *g /= sum;
    }
    gammas
}

fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    use crowd_linalg::random::standard_normal;
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
        let u: f64 = rng.gen::<f64>().max(1e-300);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    // Marsaglia–Tsang squeeze method.
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        let mut rng = StdRng::seed_from_u64(0);
        GaussianMixtureSpec::new(4, 5)
            .with_train_size(500)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap()
            .0
    }

    fn total_len(parts: &[Dataset]) -> usize {
        parts.iter().map(|p| p.len()).sum()
    }

    #[test]
    fn rejects_zero_devices_and_bad_params() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(partition(&d, 0, PartitionStrategy::Iid, &mut rng).is_err());
        assert!(partition(
            &d,
            4,
            PartitionStrategy::LabelShards {
                shards_per_device: 0
            },
            &mut rng
        )
        .is_err());
        assert!(partition(&d, 4, PartitionStrategy::Dirichlet { alpha: 0.0 }, &mut rng).is_err());
        assert!(partition(
            &d,
            4,
            PartitionStrategy::Dirichlet { alpha: -2.0 },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn iid_partition_covers_all_samples_evenly() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(2);
        let parts = partition(&d, 10, PartitionStrategy::Iid, &mut rng).unwrap();
        assert_eq!(parts.len(), 10);
        assert_eq!(total_len(&parts), d.len());
        for p in &parts {
            assert_eq!(p.len(), 50);
            // Each device should see most classes under IID.
            let nonzero = p.class_counts().iter().filter(|&&c| c > 0).count();
            assert!(nonzero >= 4, "IID device saw only {nonzero} classes");
        }
    }

    #[test]
    fn label_shards_partition_is_skewed() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(3);
        let parts = partition(
            &d,
            10,
            PartitionStrategy::LabelShards {
                shards_per_device: 1,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(total_len(&parts), d.len());
        // With one shard per device, most devices should see very few classes.
        let avg_classes: f64 = parts
            .iter()
            .map(|p| p.class_counts().iter().filter(|&&c| c > 0).count() as f64)
            .sum::<f64>()
            / parts.len() as f64;
        assert!(
            avg_classes <= 3.0,
            "average classes per device {avg_classes}"
        );
    }

    #[test]
    fn dirichlet_partition_covers_all_samples() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(4);
        let parts =
            partition(&d, 8, PartitionStrategy::Dirichlet { alpha: 0.3 }, &mut rng).unwrap();
        assert_eq!(total_len(&parts), d.len());
        assert_eq!(parts.len(), 8);
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed_than_large_alpha() {
        let d = data();
        let skew = |alpha: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let parts =
                partition(&d, 10, PartitionStrategy::Dirichlet { alpha }, &mut rng).unwrap();
            // Average, over devices, of the max class share on that device.
            parts
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let counts = p.class_counts();
                    let max = *counts.iter().max().unwrap() as f64;
                    max / p.len() as f64
                })
                .sum::<f64>()
                / parts.len() as f64
        };
        let concentrated = skew(0.05, 5);
        let spread = skew(100.0, 6);
        assert!(
            concentrated > spread,
            "alpha=0.05 skew {concentrated} should exceed alpha=100 skew {spread}"
        );
    }

    #[test]
    fn dirichlet_sampler_is_a_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        for &alpha in &[0.1, 1.0, 10.0] {
            let w = sample_dirichlet(&mut rng, alpha, 12);
            assert_eq!(w.len(), 12);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_sampler_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        for &shape in &[0.5, 2.0, 5.0] {
            let mean = (0..n).map(|_| sample_gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() / shape < 0.1,
                "gamma({shape}) empirical mean {mean}"
            );
        }
    }

    #[test]
    fn more_devices_than_samples_leaves_some_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let small = GaussianMixtureSpec::new(3, 2)
            .with_train_size(5)
            .with_test_size(2)
            .generate(&mut rng)
            .unwrap()
            .0;
        let parts = partition(&small, 10, PartitionStrategy::Iid, &mut rng).unwrap();
        assert_eq!(total_len(&parts), 5);
        assert!(parts.iter().filter(|p| p.is_empty()).count() >= 5);
    }
}
