//! Error type for dataset construction, loading, and partitioning.

use std::fmt;

/// Errors produced by the data layer.
#[derive(Debug)]
pub enum DataError {
    /// A dataset was constructed with inconsistent feature/label lengths or shapes.
    ShapeMismatch {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A label was outside `0..num_classes`.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// The number of classes the dataset declares.
        num_classes: usize,
    },
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// An IDX/MNIST file could not be read or parsed.
    Io(std::io::Error),
    /// An IDX file had an unexpected magic number or dimension header.
    Format(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            DataError::InvalidLabel { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DataError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::ShapeMismatch {
            reason: "rows".into()
        }
        .to_string()
        .contains("rows"));
        assert!(DataError::InvalidLabel {
            label: 12,
            num_classes: 10
        }
        .to_string()
        .contains("12"));
        assert!(DataError::InvalidArgument("x".into())
            .to_string()
            .contains("x"));
        assert!(DataError::Format("bad magic".into())
            .to_string()
            .contains("magic"));
    }

    #[test]
    fn io_error_conversion_and_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: DataError = io.into();
        assert!(err.to_string().contains("missing"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
