//! Feature preprocessing: normalization, standardization, and PCA reduction.
//!
//! The paper preprocesses every workload the same way: reduce dimensionality with
//! PCA (50 for MNIST, 100 for CIFAR features) and L1-normalize the result so that
//! `‖x‖₁ ≤ 1`, which is the assumption the gradient-sensitivity bound of
//! Appendix A relies on. Transformers are fit on the training set only and then
//! applied to both splits.

use crate::dataset::{Dataset, Sample};
use crate::error::DataError;
use crate::Result;
use crowd_linalg::ops::{normalize_l1, normalize_l2};
use crowd_linalg::{Pca, Vector};

/// A fitted feature transformer.
pub trait Transformer {
    /// Applies the transform to a single feature vector.
    fn transform_vector(&self, x: &Vector) -> Result<Vector>;

    /// Applies the transform to every sample of a dataset, producing a new dataset.
    fn transform(&self, data: &Dataset) -> Result<Dataset> {
        let mut out = Vec::with_capacity(data.len());
        for s in data.iter() {
            out.push(Sample::new(self.transform_vector(&s.features)?, s.label));
        }
        Dataset::new(out, data.num_classes())
    }
}

/// L1 normalization: `x ← x / ‖x‖₁` (zero vectors pass through unchanged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Normalizer;

impl Transformer for L1Normalizer {
    fn transform_vector(&self, x: &Vector) -> Result<Vector> {
        let mut out = x.clone();
        normalize_l1(&mut out);
        Ok(out)
    }
}

/// L2 normalization: `x ← x / ‖x‖₂`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Normalizer;

impl Transformer for L2Normalizer {
    fn transform_vector(&self, x: &Vector) -> Result<Vector> {
        let mut out = x.clone();
        normalize_l2(&mut out);
        Ok(out)
    }
}

/// Per-feature standardization `x ← (x − μ) / σ`, fit on a training set.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vector,
    std_devs: Vector,
}

impl Standardizer {
    /// Fits per-coordinate means and standard deviations on `data`. Coordinates
    /// with zero variance get a standard deviation of 1 so they pass through.
    pub fn fit(data: &Dataset) -> Result<Self> {
        if data.is_empty() {
            return Err(DataError::InvalidArgument(
                "cannot fit a standardizer on an empty dataset".into(),
            ));
        }
        let d = data.dim();
        let n = data.len() as f64;
        let mut means = vec![0.0; d];
        for s in data.iter() {
            for (m, v) in means.iter_mut().zip(s.features.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for s in data.iter() {
            for ((v, x), m) in vars.iter_mut().zip(s.features.iter()).zip(means.iter()) {
                *v += (x - m) * (x - m);
            }
        }
        let std_devs: Vec<f64> = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Standardizer {
            means: Vector::from_vec(means),
            std_devs: Vector::from_vec(std_devs),
        })
    }

    /// The fitted per-coordinate means.
    pub fn means(&self) -> &Vector {
        &self.means
    }

    /// The fitted per-coordinate standard deviations.
    pub fn std_devs(&self) -> &Vector {
        &self.std_devs
    }
}

impl Transformer for Standardizer {
    fn transform_vector(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.means.len() {
            return Err(DataError::ShapeMismatch {
                reason: format!(
                    "standardizer fit on dimension {}, got {}",
                    self.means.len(),
                    x.len()
                ),
            });
        }
        Ok(Vector::from_vec(
            x.iter()
                .zip(self.means.iter())
                .zip(self.std_devs.iter())
                .map(|((v, m), s)| (v - m) / s)
                .collect(),
        ))
    }
}

/// PCA dimensionality reduction fit on a training set, optionally followed by
/// L1 normalization (the paper's pipeline).
#[derive(Debug, Clone)]
pub struct PcaReducer {
    pca: Pca,
    l1_normalize: bool,
}

impl PcaReducer {
    /// Fits a `k`-component PCA on the training set.
    pub fn fit(data: &Dataset, k: usize, l1_normalize: bool) -> Result<Self> {
        if data.is_empty() {
            return Err(DataError::InvalidArgument(
                "cannot fit PCA on an empty dataset".into(),
            ));
        }
        let pca = Pca::fit(&data.feature_matrix(), k)
            .map_err(|e| DataError::InvalidArgument(format!("pca fit failed: {e}")))?;
        Ok(PcaReducer { pca, l1_normalize })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.pca.n_components()
    }

    /// The underlying fitted PCA.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }
}

impl Transformer for PcaReducer {
    fn transform_vector(&self, x: &Vector) -> Result<Vector> {
        let mut z = self
            .pca
            .transform_vector(x)
            .map_err(|e| DataError::InvalidArgument(format!("pca transform failed: {e}")))?;
        if self.l1_normalize {
            normalize_l1(&mut z);
        }
        Ok(z)
    }
}

/// Convenience: fit a PCA reducer on `train` and transform both splits, matching
/// the paper's preprocessing of MNIST and CIFAR features.
pub fn pca_pipeline(
    train: &Dataset,
    test: &Dataset,
    k: usize,
    l1_normalize: bool,
) -> Result<(Dataset, Dataset)> {
    let reducer = PcaReducer::fit(train, k, l1_normalize)?;
    Ok((reducer.transform(train)?, reducer.transform(test)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_data(dim: usize, normalized: bool) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(0);
        GaussianMixtureSpec::new(dim, 3)
            .with_train_size(90)
            .with_test_size(30)
            .with_l1_normalization(normalized)
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn l1_and_l2_normalizers() {
        let (train, _) = make_data(6, false);
        let l1 = L1Normalizer.transform(&train).unwrap();
        for s in l1.iter() {
            assert!((s.features.norm_l1() - 1.0).abs() < 1e-9);
        }
        let l2 = L2Normalizer.transform(&train).unwrap();
        for s in l2.iter() {
            assert!((s.features.norm_l2() - 1.0).abs() < 1e-9);
        }
        // Labels and sizes are preserved.
        assert_eq!(l1.len(), train.len());
        assert_eq!(l1.labels(), train.labels());
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let (train, test) = make_data(5, false);
        let std = Standardizer::fit(&train).unwrap();
        let transformed = std.transform(&train).unwrap();
        let m = transformed.feature_matrix();
        let means = m.column_means();
        assert!(means.iter().all(|v| v.abs() < 1e-9));
        // Test set transform uses train statistics and must preserve shape.
        let t = std.transform(&test).unwrap();
        assert_eq!(t.dim(), 5);
        assert!(std.transform_vector(&Vector::zeros(3)).is_err());
        assert!(Standardizer::fit(&Dataset::empty(4, 2).unwrap()).is_err());
        assert_eq!(std.means().len(), 5);
        assert_eq!(std.std_devs().len(), 5);
    }

    #[test]
    fn pca_reducer_reduces_and_normalizes() {
        let (train, test) = make_data(10, false);
        let (rtrain, rtest) = pca_pipeline(&train, &test, 4, true).unwrap();
        assert_eq!(rtrain.dim(), 4);
        assert_eq!(rtest.dim(), 4);
        for s in rtrain.iter() {
            assert!(s.features.norm_l1() <= 1.0 + 1e-9);
        }
        let reducer = PcaReducer::fit(&train, 4, false).unwrap();
        assert_eq!(reducer.n_components(), 4);
        assert!(reducer.pca().explained_variance()[0] > 0.0);
        assert!(PcaReducer::fit(&Dataset::empty(4, 2).unwrap(), 2, true).is_err());
    }

    #[test]
    fn transformers_reject_wrong_dimensions() {
        let (train, _) = make_data(8, false);
        let reducer = PcaReducer::fit(&train, 3, false).unwrap();
        assert!(reducer.transform_vector(&Vector::zeros(5)).is_err());
    }
}
