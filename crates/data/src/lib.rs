//! Datasets, synthetic workload generators, preprocessing, and device partitioning
//! for the Crowd-ML evaluation.
//!
//! The paper evaluates on three workloads:
//!
//! 1. **Activity recognition** (§V-B): 7 smartphones, triaxial accelerometer at
//!    20 Hz, acceleration magnitudes over 3.2 s windows, 64-bin FFT features,
//!    3 classes ("Still", "On Foot", "In Vehicle"), samples collected only when the
//!    activity label changes. We do not have the authors' phones or volunteers, so
//!    [`activity`] synthesizes accelerometer traces with per-activity
//!    amplitude/frequency profiles and runs the *same* feature-extraction pipeline.
//! 2. **Handwritten digits** (§V-C): MNIST, PCA to 50 dimensions, L1-normalized,
//!    60 000 train / 10 000 test, 10 classes. [`idx`] loads the real IDX files when
//!    present; [`synthetic::mnist_like`] generates a Gaussian-mixture surrogate with
//!    identical shape and a comparable error floor otherwise.
//! 3. **Object recognition** (Appendix D): CIFAR-10 CNN features, PCA to 100
//!    dimensions, L1-normalized. [`synthetic::cifar_feature_like`] generates the
//!    surrogate with heavier class overlap (higher error floor, ≈0.3 in the paper).
//!
//! [`partition`] distributes a dataset across `M` simulated devices (IID or
//! non-IID), and [`preprocess`] provides the PCA + normalization pipeline the paper
//! applies before learning.

#![forbid(unsafe_code)]

pub mod activity;
pub mod dataset;
pub mod error;
pub mod idx;
pub mod partition;
pub mod preprocess;
pub mod synthetic;

pub use dataset::{Dataset, Sample};
pub use error::DataError;

/// Result alias for fallible data operations.
pub type Result<T> = std::result::Result<T, DataError>;
