//! Labeled dataset container shared by every workload and learning algorithm.

use crate::error::DataError;
use crate::Result;
use crowd_linalg::{Matrix, Vector};
use rand::Rng;

/// One labeled sample: a feature vector and its class label.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector `x ∈ R^D`.
    pub features: Vector,
    /// Class label `y ∈ {0, …, C−1}`.
    pub label: usize,
}

impl Sample {
    /// Creates a sample.
    pub fn new(features: Vector, label: usize) -> Self {
        Sample { features, label }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.len()
    }
}

/// A labeled classification dataset (the `D = {(x_i, y_i)}` of Eq. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
    num_classes: usize,
    dim: usize,
}

impl Dataset {
    /// Creates a dataset from samples, validating label range and consistent
    /// dimensionality.
    pub fn new(samples: Vec<Sample>, num_classes: usize) -> Result<Self> {
        if num_classes == 0 {
            return Err(DataError::InvalidArgument(
                "num_classes must be at least 1".into(),
            ));
        }
        let dim = samples.first().map(|s| s.dim()).unwrap_or(0);
        for (i, s) in samples.iter().enumerate() {
            if s.dim() != dim {
                return Err(DataError::ShapeMismatch {
                    reason: format!("sample {i} has dimension {}, expected {dim}", s.dim()),
                });
            }
            if s.label >= num_classes {
                return Err(DataError::InvalidLabel {
                    label: s.label,
                    num_classes,
                });
            }
        }
        Ok(Dataset {
            samples,
            num_classes,
            dim,
        })
    }

    /// Creates an empty dataset with a declared shape (useful as an accumulator).
    pub fn empty(dim: usize, num_classes: usize) -> Result<Self> {
        if num_classes == 0 {
            return Err(DataError::InvalidArgument(
                "num_classes must be at least 1".into(),
            ));
        }
        Ok(Dataset {
            samples: Vec::new(),
            num_classes,
            dim,
        })
    }

    /// Creates a dataset from an `n × d` feature matrix and a label vector.
    pub fn from_matrix(features: &Matrix, labels: &[usize], num_classes: usize) -> Result<Self> {
        if features.rows() != labels.len() {
            return Err(DataError::ShapeMismatch {
                reason: format!(
                    "{} feature rows but {} labels",
                    features.rows(),
                    labels.len()
                ),
            });
        }
        let samples = (0..features.rows())
            .map(|r| Sample::new(features.row_vector(r), labels[r]))
            .collect();
        Dataset::new(samples, num_classes)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality (zero for an empty dataset constructed from samples).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `C`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The samples as a slice.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Sample accessor.
    pub fn get(&self, i: usize) -> &Sample {
        &self.samples[i]
    }

    /// Appends a sample, validating its shape and label.
    pub fn push(&mut self, sample: Sample) -> Result<()> {
        if self.samples.is_empty() && self.dim == 0 {
            self.dim = sample.dim();
        }
        if sample.dim() != self.dim {
            return Err(DataError::ShapeMismatch {
                reason: format!(
                    "sample has dimension {}, expected {}",
                    sample.dim(),
                    self.dim
                ),
            });
        }
        if sample.label >= self.num_classes {
            return Err(DataError::InvalidLabel {
                label: sample.label,
                num_classes: self.num_classes,
            });
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Class frequencies (counts per label).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// Empirical class prior `P(y = k)`.
    pub fn class_priors(&self) -> Vec<f64> {
        let counts = self.class_counts();
        let n = self.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }

    /// Returns the features as an `n × d` matrix (copies).
    pub fn feature_matrix(&self) -> Matrix {
        let rows: Vec<Vec<f64>> = self
            .samples
            .iter()
            .map(|s| s.features.as_slice().to_vec())
            .collect();
        Matrix::from_rows(&rows).expect("samples validated to share a dimension")
    }

    /// Returns the labels as a vector (copies).
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Returns a new dataset containing the samples at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        let mut samples = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::InvalidArgument(format!(
                    "index {i} out of range for {} samples",
                    self.len()
                )));
            }
            samples.push(self.samples[i].clone());
        }
        Ok(Dataset {
            samples,
            num_classes: self.num_classes,
            dim: self.dim,
        })
    }

    /// Shuffles the samples in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.samples.len();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.samples.swap(i, j);
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of the samples (rounded
    /// down) going to the test set, after an in-place shuffle with `rng`.
    pub fn split<R: Rng + ?Sized>(
        mut self,
        test_fraction: f64,
        rng: &mut R,
    ) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&test_fraction) {
            return Err(DataError::InvalidArgument(format!(
                "test_fraction {test_fraction} must be in [0, 1)"
            )));
        }
        self.shuffle(rng);
        let test_len = (self.len() as f64 * test_fraction).floor() as usize;
        let test_samples = self.samples.split_off(self.len() - test_len);
        let train = Dataset {
            samples: self.samples,
            num_classes: self.num_classes,
            dim: self.dim,
        };
        let test = Dataset {
            samples: test_samples,
            num_classes: self.num_classes,
            dim: self.dim,
        };
        Ok((train, test))
    }

    /// Concatenates two datasets with matching shape.
    pub fn concat(mut self, other: Dataset) -> Result<Dataset> {
        if self.num_classes != other.num_classes {
            return Err(DataError::ShapeMismatch {
                reason: format!(
                    "class counts differ: {} vs {}",
                    self.num_classes, other.num_classes
                ),
            });
        }
        if !self.is_empty() && !other.is_empty() && self.dim != other.dim {
            return Err(DataError::ShapeMismatch {
                reason: format!("dimensions differ: {} vs {}", self.dim, other.dim),
            });
        }
        if self.is_empty() {
            self.dim = other.dim;
        }
        self.samples.extend(other.samples);
        Ok(self)
    }

    /// Applies `f` to every feature vector in place (used by normalizers).
    pub fn map_features_in_place(&mut self, mut f: impl FnMut(&mut Vector)) {
        for s in &mut self.samples {
            f(&mut s.features);
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        Dataset::new(
            vec![
                Sample::new(Vector::from_vec(vec![1.0, 0.0]), 0),
                Sample::new(Vector::from_vec(vec![0.0, 1.0]), 1),
                Sample::new(Vector::from_vec(vec![1.0, 1.0]), 1),
                Sample::new(Vector::from_vec(vec![0.5, 0.5]), 2),
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Dataset::new(vec![], 0).is_err());
        let bad_label = Dataset::new(vec![Sample::new(Vector::from_vec(vec![1.0]), 5)], 3);
        assert!(bad_label.is_err());
        let bad_dim = Dataset::new(
            vec![
                Sample::new(Vector::from_vec(vec![1.0]), 0),
                Sample::new(Vector::from_vec(vec![1.0, 2.0]), 0),
            ],
            2,
        );
        assert!(bad_dim.is_err());
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.class_counts(), vec![1, 2, 1]);
        assert_eq!(d.class_priors(), vec![0.25, 0.5, 0.25]);
        assert_eq!(d.labels(), vec![0, 1, 1, 2]);
        assert_eq!(d.get(2).label, 1);
        assert_eq!(d.feature_matrix().shape(), (4, 2));
    }

    #[test]
    fn push_validates_shape_and_label() {
        let mut d = Dataset::empty(2, 3).unwrap();
        d.push(Sample::new(Vector::from_vec(vec![1.0, 2.0]), 1))
            .unwrap();
        assert!(d.push(Sample::new(Vector::from_vec(vec![1.0]), 1)).is_err());
        assert!(d
            .push(Sample::new(Vector::from_vec(vec![1.0, 2.0]), 7))
            .is_err());
        assert_eq!(d.len(), 1);
        // Empty accumulator with dim 0 adopts the first sample's dimension.
        let mut e = Dataset::empty(0, 2).unwrap();
        e.push(Sample::new(Vector::from_vec(vec![1.0, 2.0, 3.0]), 0))
            .unwrap();
        assert_eq!(e.dim(), 3);
    }

    #[test]
    fn subset_and_errors() {
        let d = tiny();
        let s = d.subset(&[0, 3]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).label, 2);
        assert!(d.subset(&[9]).is_err());
    }

    #[test]
    fn shuffle_preserves_contents() {
        let mut d = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let before = d.class_counts();
        d.shuffle(&mut rng);
        assert_eq!(d.class_counts(), before);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn split_respects_fraction() {
        let d = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.split(0.25, &mut rng).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(train.num_classes(), 3);
        let bad = tiny().split(1.5, &mut rng);
        assert!(bad.is_err());
    }

    #[test]
    fn concat_validates_shapes() {
        let a = tiny();
        let b = tiny();
        let merged = a.concat(b).unwrap();
        assert_eq!(merged.len(), 8);
        let other_classes = Dataset::empty(2, 5).unwrap();
        assert!(tiny().concat(other_classes).is_err());
        let other_dim = Dataset::new(
            vec![Sample::new(Vector::from_vec(vec![1.0, 2.0, 3.0]), 0)],
            3,
        )
        .unwrap();
        assert!(tiny().concat(other_dim).is_err());
        // Concatenating onto an empty dataset adopts the other's dimension.
        let empty = Dataset::empty(0, 3).unwrap();
        let merged2 = empty.concat(tiny()).unwrap();
        assert_eq!(merged2.dim(), 2);
    }

    #[test]
    fn from_matrix_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let d = Dataset::from_matrix(&m, &[0, 1], 2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.feature_matrix(), m);
        assert!(Dataset::from_matrix(&m, &[0], 2).is_err());
    }

    #[test]
    fn map_features_in_place_applies() {
        let mut d = tiny();
        d.map_features_in_place(|v| v.scale(2.0));
        assert_eq!(d.get(0).features.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn iteration() {
        let d = tiny();
        assert_eq!(d.iter().count(), 4);
        assert_eq!((&d).into_iter().count(), 4);
    }
}
