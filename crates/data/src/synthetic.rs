//! Synthetic Gaussian-mixture workload generators.
//!
//! The paper's simulated experiments use MNIST (PCA → 50 dims, L1-normalized) and
//! CIFAR-10 CNN features (PCA → 100 dims, L1-normalized). Neither corpus ships with
//! this repository, so [`mnist_like`] and [`cifar_feature_like`] generate
//! Gaussian-mixture surrogates with the same shape (dimension, class count,
//! train/test sizes, L1 normalization) and separability tuned to land near the
//! paper's non-private error floors (≈0.1 for digits, ≈0.3 for objects). The
//! general-purpose [`GaussianMixtureSpec`] is also the workload used by the
//! quickstart example and many tests.

use crate::dataset::{Dataset, Sample};
use crate::error::DataError;
use crate::Result;
use crowd_linalg::ops::normalize_l1;
use crowd_linalg::random::{normal_vector, standard_normal};
use crowd_linalg::Vector;
use rand::Rng;

/// Specification of a spherical Gaussian-mixture classification task.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixtureSpec {
    dim: usize,
    num_classes: usize,
    train_size: usize,
    test_size: usize,
    /// Distance of each class mean from the origin (larger = easier).
    mean_scale: f64,
    /// Per-coordinate standard deviation of each class cloud (larger = harder).
    noise_std: f64,
    /// Whether to L1-normalize every feature vector (the paper's preprocessing).
    l1_normalize: bool,
}

impl GaussianMixtureSpec {
    /// Creates a spec with the given dimensionality and class count, and defaults
    /// for everything else (1 000 train / 200 test, moderate separability,
    /// L1 normalization on).
    pub fn new(dim: usize, num_classes: usize) -> Self {
        GaussianMixtureSpec {
            dim,
            num_classes,
            train_size: 1000,
            test_size: 200,
            mean_scale: 2.0,
            noise_std: 1.0,
            l1_normalize: true,
        }
    }

    /// Sets the number of training samples.
    pub fn with_train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Sets the number of test samples.
    pub fn with_test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Sets the class-mean scale (task difficulty knob; larger is easier).
    pub fn with_mean_scale(mut self, s: f64) -> Self {
        self.mean_scale = s;
        self
    }

    /// Sets the per-coordinate noise standard deviation (larger is harder).
    pub fn with_noise_std(mut self, s: f64) -> Self {
        self.noise_std = s;
        self
    }

    /// Enables or disables L1 normalization of generated features.
    pub fn with_l1_normalization(mut self, on: bool) -> Self {
        self.l1_normalize = on;
        self
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of training samples.
    pub fn train_size(&self) -> usize {
        self.train_size
    }

    /// Number of test samples.
    pub fn test_size(&self) -> usize {
        self.test_size
    }

    /// Generates `(train, test)` datasets from the spec.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<(Dataset, Dataset)> {
        if self.dim == 0 {
            return Err(DataError::InvalidArgument("dim must be positive".into()));
        }
        if self.num_classes < 2 {
            return Err(DataError::InvalidArgument(
                "num_classes must be at least 2".into(),
            ));
        }
        // Draw one mean per class on a sphere of radius `mean_scale`.
        let means: Vec<Vector> = (0..self.num_classes)
            .map(|_| {
                let mut m = normal_vector(rng, self.dim);
                let norm = m.norm_l2();
                if norm > 0.0 {
                    m.scale(self.mean_scale / norm);
                }
                m
            })
            .collect();

        let make = |n: usize, rng: &mut R| -> Result<Dataset> {
            let mut samples = Vec::with_capacity(n);
            for i in 0..n {
                let label = i % self.num_classes;
                let mut x = means[label].clone();
                for j in 0..self.dim {
                    x[j] += self.noise_std * standard_normal(rng);
                }
                if self.l1_normalize {
                    normalize_l1(&mut x);
                }
                samples.push(Sample::new(x, label));
            }
            Dataset::new(samples, self.num_classes)
        };

        let mut train = make(self.train_size, rng)?;
        let test = make(self.test_size, rng)?;
        train.shuffle(rng);
        Ok((train, test))
    }
}

/// MNIST surrogate matching the paper's preprocessing: 50 dimensions (post-PCA),
/// 10 classes, 60 000 training and 10 000 test samples, L1-normalized, with
/// separability tuned so non-private multiclass logistic regression lands near a
/// 0.1 test error.
///
/// `scale` shrinks both sample counts proportionally (e.g. `scale = 0.1` gives
/// 6 000/1 000) so tests and quick runs stay fast; `scale = 1.0` reproduces the
/// paper-size workload.
pub fn mnist_like<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> Result<(Dataset, Dataset)> {
    let scale = if scale <= 0.0 { 1.0 } else { scale };
    GaussianMixtureSpec::new(50, 10)
        .with_train_size(((60_000.0 * scale) as usize).max(10))
        .with_test_size(((10_000.0 * scale) as usize).max(10))
        .with_mean_scale(1.6)
        .with_noise_std(0.55)
        .generate(rng)
}

/// CIFAR-10-CNN-feature surrogate: 100 dimensions (post-PCA), 10 classes,
/// 50 000 training and 10 000 test samples, L1-normalized, with heavier class
/// overlap so the non-private error floor sits near the paper's ≈0.3.
pub fn cifar_feature_like<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> Result<(Dataset, Dataset)> {
    let scale = if scale <= 0.0 { 1.0 } else { scale };
    GaussianMixtureSpec::new(100, 10)
        .with_train_size(((50_000.0 * scale) as usize).max(10))
        .with_test_size(((10_000.0 * scale) as usize).max(10))
        .with_mean_scale(1.35)
        .with_noise_std(0.72)
        .generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spec_validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(GaussianMixtureSpec::new(0, 3).generate(&mut rng).is_err());
        assert!(GaussianMixtureSpec::new(4, 1).generate(&mut rng).is_err());
    }

    #[test]
    fn generated_shapes_match_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = GaussianMixtureSpec::new(8, 4)
            .with_train_size(120)
            .with_test_size(40);
        let (train, test) = spec.generate(&mut rng).unwrap();
        assert_eq!(train.len(), 120);
        assert_eq!(test.len(), 40);
        assert_eq!(train.dim(), 8);
        assert_eq!(train.num_classes(), 4);
        // Round-robin label assignment keeps classes balanced.
        let counts = test.class_counts();
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn l1_normalization_is_applied() {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, _) = GaussianMixtureSpec::new(6, 3)
            .with_train_size(30)
            .with_test_size(10)
            .generate(&mut rng)
            .unwrap();
        for s in train.iter() {
            assert!((s.features.norm_l1() - 1.0).abs() < 1e-9);
        }
        let (raw, _) = GaussianMixtureSpec::new(6, 3)
            .with_train_size(30)
            .with_test_size(10)
            .with_l1_normalization(false)
            .generate(&mut rng)
            .unwrap();
        assert!(raw
            .iter()
            .any(|s| (s.features.norm_l1() - 1.0).abs() > 1e-6));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = GaussianMixtureSpec::new(5, 2)
            .with_train_size(50)
            .with_test_size(10);
        let (a, _) = spec.generate(&mut StdRng::seed_from_u64(7)).unwrap();
        let (b, _) = spec.generate(&mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
        let (c, _) = spec.generate(&mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn mnist_like_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = mnist_like(&mut rng, 0.01).unwrap();
        assert_eq!(train.dim(), 50);
        assert_eq!(train.num_classes(), 10);
        assert_eq!(train.len(), 600);
        assert_eq!(test.len(), 100);
    }

    #[test]
    fn cifar_like_shape_and_difficulty_ordering() {
        let mut rng = StdRng::seed_from_u64(4);
        let (train, _) = cifar_feature_like(&mut rng, 0.01).unwrap();
        assert_eq!(train.dim(), 100);
        assert_eq!(train.num_classes(), 10);
        assert_eq!(train.len(), 500);
    }

    #[test]
    fn nonpositive_scale_falls_back_to_full_size() {
        let mut rng = StdRng::seed_from_u64(5);
        // Only check the argument handling logic; use the builder directly to avoid
        // allocating the full 60k set in tests.
        let spec = GaussianMixtureSpec::new(4, 2)
            .with_train_size(10)
            .with_test_size(10);
        assert!(spec.generate(&mut rng).is_ok());
    }
}
