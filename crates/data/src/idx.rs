//! Loader for the IDX file format used by the MNIST dataset.
//!
//! When the real MNIST files (`train-images-idx3-ubyte`, `train-labels-idx1-ubyte`,
//! …) are available locally, [`load_mnist`] reads them, flattens the images to
//! 784-dimensional vectors scaled to `[0, 1]`, and returns datasets ready for the
//! paper's PCA + L1 preprocessing. When the files are absent the evaluation falls
//! back to the synthetic surrogate in [`crate::synthetic::mnist_like`].

use crate::dataset::{Dataset, Sample};
use crate::error::DataError;
use crate::Result;
use crowd_linalg::Vector;
use std::fs::File;
use std::io::Read;
use std::path::Path;

const IMAGE_MAGIC: u32 = 0x0000_0803;
const LABEL_MAGIC: u32 = 0x0000_0801;

fn read_u32_be(bytes: &[u8], offset: usize) -> Result<u32> {
    if offset + 4 > bytes.len() {
        return Err(DataError::Format(format!(
            "unexpected end of file at offset {offset}"
        )));
    }
    Ok(u32::from_be_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]))
}

/// Parses an IDX3 (images) byte buffer into per-image pixel vectors scaled to
/// `[0, 1]`.
pub fn parse_idx3_images(bytes: &[u8]) -> Result<Vec<Vec<f64>>> {
    let magic = read_u32_be(bytes, 0)?;
    if magic != IMAGE_MAGIC {
        return Err(DataError::Format(format!(
            "bad image magic {magic:#010x}, expected {IMAGE_MAGIC:#010x}"
        )));
    }
    let count = read_u32_be(bytes, 4)? as usize;
    let rows = read_u32_be(bytes, 8)? as usize;
    let cols = read_u32_be(bytes, 12)? as usize;
    let pixels = rows * cols;
    let expected = 16 + count * pixels;
    if bytes.len() < expected {
        return Err(DataError::Format(format!(
            "image file truncated: expected {expected} bytes, found {}",
            bytes.len()
        )));
    }
    let mut images = Vec::with_capacity(count);
    for i in 0..count {
        let start = 16 + i * pixels;
        let image: Vec<f64> = bytes[start..start + pixels]
            .iter()
            .map(|&b| b as f64 / 255.0)
            .collect();
        images.push(image);
    }
    Ok(images)
}

/// Parses an IDX1 (labels) byte buffer into label values.
pub fn parse_idx1_labels(bytes: &[u8]) -> Result<Vec<usize>> {
    let magic = read_u32_be(bytes, 0)?;
    if magic != LABEL_MAGIC {
        return Err(DataError::Format(format!(
            "bad label magic {magic:#010x}, expected {LABEL_MAGIC:#010x}"
        )));
    }
    let count = read_u32_be(bytes, 4)? as usize;
    let expected = 8 + count;
    if bytes.len() < expected {
        return Err(DataError::Format(format!(
            "label file truncated: expected {expected} bytes, found {}",
            bytes.len()
        )));
    }
    Ok(bytes[8..8 + count].iter().map(|&b| b as usize).collect())
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Loads an image/label file pair into a [`Dataset`] with `num_classes` classes.
pub fn load_idx_pair(
    images_path: &Path,
    labels_path: &Path,
    num_classes: usize,
) -> Result<Dataset> {
    let images = parse_idx3_images(&read_file(images_path)?)?;
    let labels = parse_idx1_labels(&read_file(labels_path)?)?;
    if images.len() != labels.len() {
        return Err(DataError::ShapeMismatch {
            reason: format!("{} images but {} labels", images.len(), labels.len()),
        });
    }
    let samples = images
        .into_iter()
        .zip(labels)
        .map(|(img, label)| Sample::new(Vector::from_vec(img), label))
        .collect();
    Dataset::new(samples, num_classes)
}

/// Loads the four standard MNIST files from `dir`, returning `(train, test)`.
///
/// Expects the uncompressed original filenames.
pub fn load_mnist(dir: &Path) -> Result<(Dataset, Dataset)> {
    let train = load_idx_pair(
        &dir.join("train-images-idx3-ubyte"),
        &dir.join("train-labels-idx1-ubyte"),
        10,
    )?;
    let test = load_idx_pair(
        &dir.join("t10k-images-idx3-ubyte"),
        &dir.join("t10k-labels-idx1-ubyte"),
        10,
    )?;
    Ok((train, test))
}

/// Serializes images into IDX3 bytes (used by tests and tooling).
pub fn encode_idx3_images(images: &[Vec<u8>], rows: usize, cols: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + images.len() * rows * cols);
    out.extend_from_slice(&IMAGE_MAGIC.to_be_bytes());
    out.extend_from_slice(&(images.len() as u32).to_be_bytes());
    out.extend_from_slice(&(rows as u32).to_be_bytes());
    out.extend_from_slice(&(cols as u32).to_be_bytes());
    for img in images {
        out.extend_from_slice(img);
    }
    out
}

/// Serializes labels into IDX1 bytes (used by tests and tooling).
pub fn encode_idx1_labels(labels: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + labels.len());
    out.extend_from_slice(&LABEL_MAGIC.to_be_bytes());
    out.extend_from_slice(&(labels.len() as u32).to_be_bytes());
    out.extend_from_slice(labels);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn image_round_trip() {
        let images = vec![vec![0u8, 128, 255, 64], vec![10, 20, 30, 40]];
        let bytes = encode_idx3_images(&images, 2, 2);
        let parsed = parse_idx3_images(&bytes).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].len(), 4);
        assert!((parsed[0][1] - 128.0 / 255.0).abs() < 1e-12);
        assert!((parsed[0][2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_round_trip() {
        let labels = vec![0u8, 3, 9, 1];
        let bytes = encode_idx1_labels(&labels);
        let parsed = parse_idx1_labels(&bytes).unwrap();
        assert_eq!(parsed, vec![0, 3, 9, 1]);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut bytes = encode_idx1_labels(&[1, 2, 3]);
        bytes[3] = 0xFF;
        assert!(parse_idx1_labels(&bytes).is_err());

        let images = encode_idx3_images(&[vec![1, 2, 3, 4]], 2, 2);
        assert!(parse_idx3_images(&images[..18]).is_err());
        assert!(parse_idx1_labels(&[0, 0]).is_err());
        // Labels parsed as images must fail on magic.
        assert!(parse_idx3_images(&encode_idx1_labels(&[1])).is_err());
    }

    #[test]
    fn load_pair_from_disk() {
        let dir = std::env::temp_dir().join(format!("crowd_ml_idx_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let images_path = dir.join("imgs");
        let labels_path = dir.join("labels");
        fs::write(
            &images_path,
            encode_idx3_images(&[vec![255, 0, 0, 255], vec![0, 255, 255, 0]], 2, 2),
        )
        .unwrap();
        fs::write(&labels_path, encode_idx1_labels(&[7, 2])).unwrap();

        let data = load_idx_pair(&images_path, &labels_path, 10).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.dim(), 4);
        assert_eq!(data.labels(), vec![7, 2]);

        // Mismatched counts are rejected.
        fs::write(&labels_path, encode_idx1_labels(&[7])).unwrap();
        assert!(load_idx_pair(&images_path, &labels_path, 10).is_err());

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_mnist_missing_files_is_io_error() {
        let missing = Path::new("/nonexistent/mnist/dir");
        match load_mnist(missing) {
            Err(DataError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
