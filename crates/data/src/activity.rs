//! Synthetic activity-recognition workload (§V-B of the paper).
//!
//! The paper's real-environment demonstration recognizes three activities —
//! "Still", "On Foot", and "In Vehicle" — from smartphone accelerometers sampled at
//! 20 Hz. Acceleration magnitudes `|a| = √(a_x² + a_y² + a_z²)` are windowed over
//! 3.2 s (64 samples at 20 Hz) and featurized with a 64-bin FFT; a sample is kept
//! only when the activity label *changes* from the previous value, which lowers
//! the effective sampling rate and decorrelates consecutive samples.
//!
//! We cannot re-run the authors' phones, so [`ActivitySimulator`] generates a
//! synthetic magnitude signal per activity — gravity plus activity-specific
//! oscillation and noise — and feeds it through exactly the same windowing, FFT
//! featurization, and label-change sampling policy. The classifier and privacy
//! pipeline downstream are identical to what a real deployment would see.

use crate::dataset::{Dataset, Sample};
use crate::error::DataError;
use crate::Result;
use crowd_linalg::fft::magnitude_spectrum;
use crowd_linalg::ops::normalize_l1;
use crowd_linalg::random::standard_normal;
use crowd_linalg::Vector;
use rand::Rng;

/// The three activities recognized in the paper's demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// The device is stationary.
    Still,
    /// The user is walking or running.
    OnFoot,
    /// The user is in a moving vehicle.
    InVehicle,
}

impl Activity {
    /// All activities in label order.
    pub const ALL: [Activity; 3] = [Activity::Still, Activity::OnFoot, Activity::InVehicle];

    /// The class label used by the learning stack.
    pub fn label(self) -> usize {
        match self {
            Activity::Still => 0,
            Activity::OnFoot => 1,
            Activity::InVehicle => 2,
        }
    }

    /// Converts a class label back to an activity.
    pub fn from_label(label: usize) -> Option<Activity> {
        Activity::ALL.get(label).copied()
    }

    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Activity::Still => "Still",
            Activity::OnFoot => "On Foot",
            Activity::InVehicle => "In Vehicle",
        }
    }

    /// Signal profile: (oscillation amplitude, oscillation frequency in Hz, noise σ).
    ///
    /// Walking produces a strong ~2 Hz gait oscillation; vehicles produce lower-
    /// frequency, lower-amplitude vibration with broadband noise; stationary devices
    /// see gravity plus sensor noise only.
    fn profile(self) -> (f64, f64, f64) {
        match self {
            Activity::Still => (0.02, 0.3, 0.03),
            Activity::OnFoot => (2.5, 2.0, 0.35),
            Activity::InVehicle => (0.6, 0.9, 0.55),
        }
    }
}

/// Configuration of the synthetic accelerometer pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityConfig {
    /// Accelerometer sampling rate in Hz (paper: 20 Hz).
    pub sample_rate_hz: f64,
    /// Window length in accelerometer samples; must be a power of two
    /// (paper: 3.2 s × 20 Hz = 64 samples).
    pub window_len: usize,
    /// Expected dwell time (in windows) before the simulated user switches
    /// activity. Label changes follow a geometric distribution with this mean.
    pub mean_dwell_windows: f64,
    /// Whether to L1-normalize the FFT features (matches the rest of the paper's
    /// preprocessing; the privacy analysis requires `‖x‖₁ ≤ 1`).
    pub l1_normalize: bool,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        ActivityConfig {
            sample_rate_hz: 20.0,
            window_len: 64,
            mean_dwell_windows: 12.0,
            l1_normalize: true,
        }
    }
}

/// Simulates one device's accelerometer stream and emits label-change-triggered
/// feature samples.
#[derive(Debug, Clone)]
pub struct ActivitySimulator {
    config: ActivityConfig,
    current: Activity,
    previous_emitted: Option<Activity>,
    windows_in_current: usize,
    phase: f64,
}

impl ActivitySimulator {
    /// Creates a simulator starting in the given activity.
    pub fn new(config: ActivityConfig, start: Activity) -> Result<Self> {
        if config.window_len == 0 || (config.window_len & (config.window_len - 1)) != 0 {
            return Err(DataError::InvalidArgument(format!(
                "window_len {} must be a nonzero power of two",
                config.window_len
            )));
        }
        if config.sample_rate_hz <= 0.0 {
            return Err(DataError::InvalidArgument(
                "sample_rate_hz must be positive".into(),
            ));
        }
        if config.mean_dwell_windows < 1.0 {
            return Err(DataError::InvalidArgument(
                "mean_dwell_windows must be at least 1".into(),
            ));
        }
        Ok(ActivitySimulator {
            config,
            current: start,
            previous_emitted: None,
            windows_in_current: 0,
            phase: 0.0,
        })
    }

    /// The feature dimensionality produced by the simulator (`window_len / 2`
    /// FFT magnitude bins).
    pub fn feature_dim(&self) -> usize {
        self.config.window_len / 2
    }

    /// The activity currently being simulated.
    pub fn current_activity(&self) -> Activity {
        self.current
    }

    /// Generates one raw magnitude window for the current activity.
    pub fn raw_window<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        let (amp, freq, noise) = self.current.profile();
        let dt = 1.0 / self.config.sample_rate_hz;
        let mut window = Vec::with_capacity(self.config.window_len);
        for _ in 0..self.config.window_len {
            self.phase += 2.0 * std::f64::consts::PI * freq * dt;
            // Gravity magnitude (≈9.8) plus activity oscillation plus sensor noise.
            let value = 9.8 + amp * self.phase.sin() + noise * standard_normal(rng);
            window.push(value);
        }
        window
    }

    /// Extracts the FFT magnitude feature vector from a raw window.
    pub fn featurize(&self, window: &[f64]) -> Result<Vector> {
        let mags = magnitude_spectrum(window)
            .map_err(|e| DataError::InvalidArgument(format!("feature extraction failed: {e}")))?;
        let mut x = Vector::from_vec(mags);
        // Remove the DC (gravity) bin so features describe motion, then normalize.
        if !x.is_empty() {
            x[0] = 0.0;
        }
        if self.config.l1_normalize {
            normalize_l1(&mut x);
        }
        Ok(x)
    }

    /// Advances the simulation by one window and returns a labeled sample **only
    /// when the activity label changed** since the previously emitted sample —
    /// the paper's sampling policy. The very first window is always emitted.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Option<Sample>> {
        // Possibly transition to a new activity (geometric dwell time).
        self.windows_in_current += 1;
        let p_switch = 1.0 / self.config.mean_dwell_windows;
        if self.windows_in_current > 1 && rng.gen::<f64>() < p_switch {
            let next = loop {
                let candidate = Activity::ALL[rng.gen_range(0..Activity::ALL.len())];
                if candidate != self.current {
                    break candidate;
                }
            };
            self.current = next;
            self.windows_in_current = 0;
        }

        let window = self.raw_window(rng);
        let emit = match self.previous_emitted {
            None => true,
            Some(prev) => prev != self.current,
        };
        if !emit {
            return Ok(None);
        }
        self.previous_emitted = Some(self.current);
        let features = self.featurize(&window)?;
        Ok(Some(Sample::new(features, self.current.label())))
    }

    /// Runs the simulator until `n` samples have been emitted (bounded by a
    /// generous step budget to guarantee termination) and returns them as a
    /// dataset.
    pub fn collect<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Result<Dataset> {
        let mut dataset = Dataset::empty(self.feature_dim(), Activity::ALL.len())?;
        let max_steps = n.saturating_mul(200).max(1000);
        let mut steps = 0;
        while dataset.len() < n && steps < max_steps {
            steps += 1;
            if let Some(sample) = self.step(rng)? {
                dataset.push(sample)?;
            }
        }
        Ok(dataset)
    }
}

/// Generates one dataset per device for a fleet of `num_devices` simulated phones,
/// each contributing `samples_per_device` label-change-triggered samples.
pub fn simulate_fleet<R: Rng + ?Sized>(
    rng: &mut R,
    config: &ActivityConfig,
    num_devices: usize,
    samples_per_device: usize,
) -> Result<Vec<Dataset>> {
    let mut out = Vec::with_capacity(num_devices);
    for d in 0..num_devices {
        let start = Activity::ALL[d % Activity::ALL.len()];
        let mut sim = ActivitySimulator::new(config.clone(), start)?;
        out.push(sim.collect(rng, samples_per_device)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activity_label_round_trip() {
        for a in Activity::ALL {
            assert_eq!(Activity::from_label(a.label()), Some(a));
        }
        assert_eq!(Activity::from_label(3), None);
        assert_eq!(Activity::OnFoot.name(), "On Foot");
    }

    #[test]
    fn config_validation() {
        let bad = ActivityConfig {
            window_len: 63,
            ..ActivityConfig::default()
        };
        assert!(ActivitySimulator::new(bad, Activity::Still).is_err());
        let bad_rate = ActivityConfig {
            sample_rate_hz: 0.0,
            ..ActivityConfig::default()
        };
        assert!(ActivitySimulator::new(bad_rate, Activity::Still).is_err());
        let bad_dwell = ActivityConfig {
            mean_dwell_windows: 0.5,
            ..ActivityConfig::default()
        };
        assert!(ActivitySimulator::new(bad_dwell, Activity::Still).is_err());
        assert!(ActivitySimulator::new(ActivityConfig::default(), Activity::Still).is_ok());
    }

    #[test]
    fn feature_dim_is_half_window() {
        let sim = ActivitySimulator::new(ActivityConfig::default(), Activity::Still).unwrap();
        assert_eq!(sim.feature_dim(), 32);
    }

    #[test]
    fn features_are_l1_normalized_and_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sim = ActivitySimulator::new(ActivityConfig::default(), Activity::OnFoot).unwrap();
        let window = sim.raw_window(&mut rng);
        assert_eq!(window.len(), 64);
        let x = sim.featurize(&window).unwrap();
        assert!(x.is_finite());
        assert!((x.norm_l1() - 1.0).abs() < 1e-9);
        assert_eq!(x[0], 0.0, "DC bin must be removed");
    }

    #[test]
    fn walking_has_more_spectral_energy_than_still() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ActivityConfig {
            l1_normalize: false,
            ..ActivityConfig::default()
        };
        let mut walk = ActivitySimulator::new(config.clone(), Activity::OnFoot).unwrap();
        let mut still = ActivitySimulator::new(config, Activity::Still).unwrap();
        let walk_window = walk.raw_window(&mut rng);
        let still_window = still.raw_window(&mut rng);
        let wx = walk.featurize(&walk_window).unwrap();
        let sx = still.featurize(&still_window).unwrap();
        assert!(wx.norm_l1() > 5.0 * sx.norm_l1());
    }

    #[test]
    fn first_step_always_emits_and_repeats_do_not() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = ActivityConfig {
            mean_dwell_windows: 1e9, // effectively never switch
            ..ActivityConfig::default()
        };
        let mut sim = ActivitySimulator::new(config, Activity::Still).unwrap();
        assert!(sim.step(&mut rng).unwrap().is_some());
        for _ in 0..5 {
            assert!(sim.step(&mut rng).unwrap().is_none());
        }
    }

    #[test]
    fn collect_produces_requested_samples_with_all_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = ActivityConfig {
            mean_dwell_windows: 2.0,
            ..ActivityConfig::default()
        };
        let mut sim = ActivitySimulator::new(config, Activity::Still).unwrap();
        let data = sim.collect(&mut rng, 60).unwrap();
        assert_eq!(data.len(), 60);
        assert_eq!(data.num_classes(), 3);
        let counts = data.class_counts();
        assert!(counts.iter().all(|&c| c > 0), "class counts {counts:?}");
        // Consecutive samples never share a label (label-change-triggered policy).
        for pair in data.samples().windows(2) {
            assert_ne!(pair[0].label, pair[1].label);
        }
    }

    #[test]
    fn fleet_simulation_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let fleet = simulate_fleet(&mut rng, &ActivityConfig::default(), 7, 10).unwrap();
        assert_eq!(fleet.len(), 7);
        for d in &fleet {
            assert_eq!(d.len(), 10);
            assert_eq!(d.dim(), 32);
        }
    }
}
