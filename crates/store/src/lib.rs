//! `crowd-store`: durable server state for Crowd-ML.
//!
//! The server is the custodian of two things that must never be lost: the
//! shared model parameters and the record of privacy budget already spent by
//! each device — forgetting the latter after a crash would let the server
//! silently over-query devices past their ε ceiling. This crate makes both
//! survive restarts:
//!
//! * **Write-ahead log** ([`wal`]) — every applied aggregation epoch (and the
//!   per-device ε charges it incurs) is appended to a CRC-framed append-only
//!   log *before* the epoch is applied and its checkins are acknowledged. One
//!   append covers a whole epoch, so the WAL group-commits with the
//!   aggregation runtime's existing batching.
//! * **Snapshots** ([`snapshot`]) — periodic full snapshots of the
//!   [`ServerState`](crowd_core::ServerState) (params, iteration, schedule
//!   position, monitoring counters, ε ledger), written to a temporary file and
//!   atomically renamed so a crash never leaves a half-written snapshot
//!   visible.
//! * **Recovery** ([`store::Store::open`]) — load the latest snapshot, replay
//!   the WAL tail (tolerating a torn final record, the expected crash
//!   artifact), and hand back a server whose state is **bitwise identical** to
//!   an uninterrupted run. This leans on the deterministic fixed-order merge
//!   of `crowd-agg`: replaying the logged epochs through
//!   [`Server::apply_aggregate`](crowd_core::Server::apply_aggregate)
//!   reproduces every parameter bit and every ledger entry.
//! * **Rotation/compaction** — each snapshot starts a fresh WAL segment and
//!   deletes the segments it superseded, so the log never grows beyond one
//!   snapshot interval.
//!
//! The knobs live on `crowd_core::config::ServerConfig::persist`
//! ([`PersistSettings`](crowd_core::PersistSettings)): the data directory,
//! the snapshot cadence, and whether appends `fsync` (required for durability
//! across power loss; process-crash durability needs no fsync).

#![forbid(unsafe_code)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use store::{RecoveryReport, Store};

use std::fmt;

/// Errors produced by the persistence subsystem.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The snapshot file exists but cannot be decoded. A torn WAL tail is
    /// *not* corruption (it is the expected crash artifact and is truncated
    /// away); a damaged snapshot is, because snapshots are written atomically.
    CorruptSnapshot(String),
    /// A WAL record decoded but violates the log's sequencing invariants
    /// (e.g. its pre-apply iteration does not match the recovered server).
    CorruptWal(String),
    /// Replaying a logged epoch produced different ε charges than the log
    /// recorded — the server was restarted with a different budget
    /// configuration than it ran with.
    ReplayDiverged(String),
    /// The core framework reported an error during restore or replay.
    Core(crowd_core::CoreError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::CorruptSnapshot(detail) => write!(f, "corrupt snapshot: {detail}"),
            StoreError::CorruptWal(detail) => write!(f, "corrupt WAL: {detail}"),
            StoreError::ReplayDiverged(detail) => write!(f, "replay diverged: {detail}"),
            StoreError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<crowd_core::CoreError> for StoreError {
    fn from(e: crowd_core::CoreError) -> Self {
        StoreError::Core(e)
    }
}

/// Result alias for persistence operations.
pub type Result<T> = std::result::Result<T, StoreError>;

pub mod testutil {
    //! Tiny helpers shared by the workspace's durability tests and benches.
    //! Not part of the persistence API proper — just the one piece of
    //! filesystem scaffolding every store consumer's tests need.

    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, disposable directory under the system temp dir. Callers own
    /// cleanup (`std::fs::remove_dir_all`) once they are done with it.
    pub fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("crowd-store-{tag}-{}-{n}", std::process::id()));
        // audit:allow(panic-freedom, test scaffolding, never on the request path)
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        let io: StoreError = std::io::Error::other("disk").into();
        assert!(io.to_string().contains("disk"));
        assert!(std::error::Error::source(&io).is_some());
        let snap = StoreError::CorruptSnapshot("bad magic".into());
        assert!(snap.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&snap).is_none());
        let wal = StoreError::CorruptWal("iteration gap".into());
        assert!(wal.to_string().contains("iteration gap"));
        let diverged = StoreError::ReplayDiverged("charges".into());
        assert!(diverged.to_string().contains("charges"));
        let core: StoreError = crowd_core::CoreError::Config("bad".into()).into();
        assert!(core.to_string().contains("bad"));
        assert!(std::error::Error::source(&core).is_some());
    }
}
