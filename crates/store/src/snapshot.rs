//! Atomic full-state snapshots.
//!
//! A snapshot file is `[8-byte magic][wal_seq: u64][state body][crc32: u32]`
//! where the CRC covers `wal_seq` and the body. It is written to a temporary
//! sibling and atomically renamed into place, so `snapshot.bin` is always
//! either the previous complete snapshot or the new complete snapshot — never
//! a torn hybrid. `wal_seq` names the WAL segment that logically *follows*
//! the snapshot: recovery restores the snapshot state and replays only
//! segments with `seq >= wal_seq`.

use crate::codec::{self, crc32};
use crate::{Result, StoreError};
use crowd_core::ServerState;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CMLSNAP1";

/// File name of the live snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

pub(crate) const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// A decoded snapshot: the state plus the WAL segment that follows it.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// First WAL segment whose records are *not* covered by this snapshot.
    pub wal_seq: u64,
    /// The full server state at the moment of the snapshot.
    pub state: ServerState,
}

/// Writes a snapshot of `state` (followed by WAL segment `wal_seq`) atomically
/// into `dir`.
pub fn write(dir: &Path, wal_seq: u64, state: &ServerState, fsync: bool) -> Result<()> {
    let mut bytes = Vec::with_capacity(64 + 8 * state.params.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&wal_seq.to_le_bytes());
    bytes.extend_from_slice(&codec::encode_state(state));
    let crc = crc32(&bytes[SNAPSHOT_MAGIC.len()..]);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = dir.join(SNAPSHOT_TMP);
    let live = dir.join(SNAPSHOT_FILE);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        if fsync {
            file.sync_data()?;
        }
    }
    std::fs::rename(&tmp, &live)?;
    if fsync {
        // Persist the rename itself (the directory entry).
        if let Ok(dir_handle) = File::open(dir) {
            let _ = dir_handle.sync_data();
        }
    }
    Ok(())
}

/// Reads the live snapshot from `dir`. `Ok(None)` when no snapshot exists yet;
/// an unreadable snapshot is an error (snapshots are written atomically, so a
/// bad one means external damage, and silently restarting from scratch would
/// forget spent privacy budget).
pub fn read(dir: &Path) -> Result<Option<Snapshot>> {
    let live = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&live) {
        Ok(mut file) => file.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let min_len = SNAPSHOT_MAGIC.len() + 8 + 4;
    if bytes.len() < min_len {
        return Err(StoreError::CorruptSnapshot(format!(
            "{} bytes is shorter than the fixed header",
            bytes.len()
        )));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::CorruptSnapshot("bad magic".into()));
    }
    let crc_offset = bytes.len() - 4;
    let declared = match bytes[crc_offset..].try_into() {
        Ok(arr) => u32::from_le_bytes(arr),
        Err(_) => return Err(StoreError::CorruptSnapshot("unreadable CRC".into())),
    };
    let actual = crc32(&bytes[SNAPSHOT_MAGIC.len()..crc_offset]);
    if declared != actual {
        return Err(StoreError::CorruptSnapshot(format!(
            "CRC mismatch: declared {declared:#010x}, computed {actual:#010x}"
        )));
    }
    let wal_seq = match bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 8].try_into() {
        Ok(arr) => u64::from_le_bytes(arr),
        Err(_) => return Err(StoreError::CorruptSnapshot("unreadable wal_seq".into())),
    };
    let state = codec::decode_state(&bytes[SNAPSHOT_MAGIC.len() + 8..crc_offset])
        .map_err(|e| StoreError::CorruptSnapshot(e.0))?;
    Ok(Some(Snapshot { wal_seq, state }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;
    use crowd_learning::LearningRate;
    use crowd_linalg::Vector;

    fn sample(wal_seq: u64) -> Snapshot {
        Snapshot {
            wal_seq,
            state: ServerState {
                params: Vector::from_vec(vec![1.5, -0.25, 0.0]),
                iteration: 11,
                total_samples: 100,
                total_errors: 3,
                progress: vec![],
                schedule: LearningRate::InvSqrt { c: 2.0 },
                budget_ledger: vec![(0, 0.5)],
                round: None,
                last_round: vec![],
            },
        }
    }

    #[test]
    fn missing_snapshot_reads_as_none() {
        let dir = temp_dir("snap-none");
        assert_eq!(read(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_read_round_trips() {
        let dir = temp_dir("snap-roundtrip");
        let snapshot = sample(4);
        write(&dir, snapshot.wal_seq, &snapshot.state, false).unwrap();
        assert_eq!(read(&dir).unwrap(), Some(snapshot));
        // A second write atomically replaces the first.
        let newer = sample(9);
        write(&dir, newer.wal_seq, &newer.state, true).unwrap();
        assert_eq!(read(&dir).unwrap(), Some(newer));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_reported_not_ignored() {
        let dir = temp_dir("snap-corrupt");
        let snapshot = sample(2);
        write(&dir, snapshot.wal_seq, &snapshot.state, false).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read(&dir), Err(StoreError::CorruptSnapshot(_))));

        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(read(&dir), Err(StoreError::CorruptSnapshot(_))));

        let mut bad_magic = std::fs::read(&path).unwrap();
        bad_magic.clear();
        bad_magic.extend_from_slice(b"WRONGMAG");
        bad_magic.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(read(&dir), Err(StoreError::CorruptSnapshot(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
