//! CRC-framed append-only write-ahead log segments.
//!
//! A segment is `[8-byte magic]` followed by frames of
//! `[len: u32][crc32(payload): u32][payload: len bytes]`. Appends happen
//! strictly before the logged epoch is applied and acknowledged, so after a
//! crash the log is a superset of nothing and a prefix of everything: every
//! acked epoch is present, and at most the final frame is torn. Reading stops
//! at the first frame whose length or CRC does not check out and reports the
//! byte offset of the last valid frame so the writer can truncate the torn
//! tail before appending again.

use crate::codec::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"CMLWAL01";

/// Upper bound on a single record's payload (a merged epoch of a very large
/// model is tens of megabytes; anything near this cap is corruption).
pub const MAX_RECORD_LEN: usize = 1 << 30;

const FRAME_HEADER: usize = 8; // len + crc

/// Everything read back from one segment.
#[derive(Debug)]
pub struct SegmentContents {
    /// The valid record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset just past the last valid frame (where appending resumes).
    pub valid_len: u64,
    /// `true` when trailing bytes after the last valid frame were present
    /// (a torn final append — the expected crash artifact).
    pub torn: bool,
}

/// Reads a segment, tolerating a torn tail.
///
/// A missing or too-short magic makes the whole segment count as empty
/// (`valid_len` = 0), which the writer repairs by rewriting the header.
pub fn read_segment(path: &Path) -> std::io::Result<SegmentContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(SegmentContents {
            records: Vec::new(),
            valid_len: 0,
            torn: !bytes.is_empty(),
        });
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    loop {
        let remaining = &bytes[offset..];
        if remaining.len() < FRAME_HEADER {
            break;
        }
        // The length check above guarantees 4-byte slices here, but a decode
        // path never panics on principle: treat any failure as a torn tail.
        let Ok(len_bytes) = remaining[..4].try_into() else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_RECORD_LEN || remaining.len() < FRAME_HEADER + len {
            break;
        }
        let Ok(crc_bytes) = remaining[4..8].try_into() else {
            break;
        };
        let crc = u32::from_le_bytes(crc_bytes);
        let payload = &remaining[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        offset += FRAME_HEADER + len;
    }
    Ok(SegmentContents {
        records,
        valid_len: offset as u64,
        torn: offset < bytes.len(),
    })
}

/// An open segment accepting appends.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    fsync: bool,
}

/// The file name of segment `seq` (zero-padded so lexicographic order is
/// numeric order).
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:08}.log")
}

/// Parses a segment sequence number back out of a file name.
pub fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl WalWriter {
    /// Creates (or truncates) segment `seq` in `dir` and writes the magic.
    pub fn create(dir: &Path, seq: u64, fsync: bool) -> std::io::Result<Self> {
        let path = dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        if fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path,
            seq,
            fsync,
        })
    }

    /// Reopens an existing segment for appending after recovery, truncating a
    /// torn tail at `valid_len` first. `valid_len` = 0 (unreadable header)
    /// rewrites the segment from scratch.
    pub fn reopen(dir: &Path, seq: u64, valid_len: u64, fsync: bool) -> std::io::Result<Self> {
        if valid_len < WAL_MAGIC.len() as u64 {
            return Self::create(dir, seq, fsync);
        }
        let path = dir.join(segment_file_name(seq));
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_len)?;
        if fsync {
            file.sync_data()?;
        }
        let mut writer = WalWriter {
            file,
            path,
            seq,
            fsync,
        };
        writer.seek_end(valid_len)?;
        Ok(writer)
    }

    fn seek_end(&mut self, pos: u64) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(pos))?;
        Ok(())
    }

    /// This segment's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// This segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one framed record and (optionally) syncs it to disk. The frame
    /// is assembled into one buffer and written with a single `write_all`, so
    /// a crash mid-append tears at most the final frame.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;

    #[test]
    fn append_and_read_round_trip() {
        let dir = temp_dir("wal-roundtrip");
        let mut wal = WalWriter::create(&dir, 0, false).unwrap();
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; (i as usize + 1) * 3]).collect();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        drop(wal);
        let contents = read_segment(&dir.join(segment_file_name(0))).unwrap();
        assert_eq!(contents.records, payloads);
        assert!(!contents.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let dir = temp_dir("wal-torn");
        let mut wal = WalWriter::create(&dir, 3, false).unwrap();
        wal.append(&[1, 2, 3]).unwrap();
        wal.append(&[4, 5, 6, 7]).unwrap();
        drop(wal);
        let path = dir.join(segment_file_name(3));
        // Simulate a crash mid-append: chop bytes off the final frame.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 2).unwrap();
        drop(file);

        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.records, vec![vec![1, 2, 3]]);
        assert!(contents.torn);

        // Reopen truncates the tear; a new append lands cleanly after it.
        let mut wal = WalWriter::reopen(&dir, 3, contents.valid_len, false).unwrap();
        wal.append(&[9, 9]).unwrap();
        drop(wal);
        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.records, vec![vec![1, 2, 3], vec![9, 9]]);
        assert!(!contents.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay_at_last_valid_record() {
        let dir = temp_dir("wal-crc");
        let mut wal = WalWriter::create(&dir, 0, false).unwrap();
        wal.append(&[10; 8]).unwrap();
        wal.append(&[20; 8]).unwrap();
        drop(wal);
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second frame's payload.
        let len = bytes.len();
        bytes[len - 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.records, vec![vec![10; 8]]);
        assert!(contents.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_counts_as_empty() {
        let dir = temp_dir("wal-magic");
        let path = dir.join(segment_file_name(0));
        std::fs::write(&path, b"garbage-not-a-wal").unwrap();
        let contents = read_segment(&path).unwrap();
        assert!(contents.records.is_empty());
        assert_eq!(contents.valid_len, 0);
        assert!(contents.torn);
        // Reopen with valid_len 0 rewrites a fresh, valid segment.
        let mut wal = WalWriter::reopen(&dir, 0, 0, false).unwrap();
        wal.append(&[1]).unwrap();
        drop(wal);
        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.records, vec![vec![1]]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(7), "wal-00000007.log");
        assert_eq!(parse_segment_seq("wal-00000007.log"), Some(7));
        assert_eq!(parse_segment_seq("wal-123.log"), Some(123));
        assert_eq!(parse_segment_seq("snapshot.bin"), None);
        assert_eq!(parse_segment_seq("wal-x.log"), None);
    }

    #[test]
    fn fsync_mode_appends_are_readable() {
        let dir = temp_dir("wal-fsync");
        let mut wal = WalWriter::create(&dir, 0, true).unwrap();
        wal.append(&[42; 16]).unwrap();
        drop(wal);
        let contents = read_segment(&dir.join(segment_file_name(0))).unwrap();
        assert_eq!(contents.records, vec![vec![42; 16]]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
