//! The store: snapshot + WAL orchestration, recovery, rotation, compaction.
//!
//! Disk layout inside the configured data directory:
//!
//! ```text
//! data_dir/
//!   snapshot.bin      latest full snapshot (atomic-rename; may be absent)
//!   wal-XXXXXXXX.log  the active WAL segment (sequence-numbered)
//! ```
//!
//! The protocol between the aggregation runtime and the store, per epoch:
//!
//! 1. [`Store::log_epoch`] — append the epoch (and its ε charges) to the WAL
//!    *before* applying it or acknowledging its checkins (write-ahead).
//! 2. apply the epoch to the server.
//! 3. [`Store::note_applied`] — when it reports a snapshot is due,
//!    [`Store::snapshot`] the server's exported state, which also rotates to a
//!    fresh WAL segment and deletes the segments the snapshot superseded.
//!
//! [`Store::open`] inverts this on startup: restore the snapshot, replay the
//! surviving WAL records through `Server::apply_aggregate` (the same
//! deterministic code path the live run used, so the result is bitwise
//! identical), truncate any torn tail, and resume appending where the log
//! left off.

use crate::codec;
use crate::snapshot;
use crate::wal::{self, WalWriter};
use crate::{Result, StoreError};
use crowd_core::config::ServerConfig;
use crowd_core::server::{EpochAggregate, PendingSubmission, RoundAdmission, Server};
use crowd_core::ServerState;
use crowd_learning::model::Model;
use crowd_telemetry::{CounterId, HistogramId, Registry, Stage};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What [`Store::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot was loaded.
    pub from_snapshot: bool,
    /// WAL epochs replayed on top of the snapshot (or from scratch).
    pub replayed_epochs: u64,
    /// Logged epochs whose apply was refused (identically refused in the
    /// original run — e.g. malformed but logged; normally 0).
    pub skipped_epochs: u64,
    /// Masked round submissions replayed into the open round.
    pub replayed_submissions: u64,
    /// Round boundaries (finalize or expiry) replayed.
    pub replayed_rounds: u64,
    /// A torn WAL tail (the expected crash artifact) was truncated.
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// `true` when any prior state was recovered (vs. a fresh start).
    pub fn recovered(&self) -> bool {
        self.from_snapshot
            || self.replayed_epochs > 0
            || self.skipped_epochs > 0
            || self.replayed_submissions > 0
            || self.replayed_rounds > 0
    }
}

/// A server's durable backing: one snapshot file plus the active WAL segment.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    snapshot_every: u64,
    fsync: bool,
    wal: WalWriter,
    epochs_since_snapshot: u64,
    /// When attached (by the aggregation runtime), WAL append bytes/latency
    /// and snapshot durations are recorded here alongside the runtime's own
    /// metrics, so one scrape covers the whole durability path.
    metrics: Option<Arc<Registry>>,
}

impl Store {
    /// Opens (creating if necessary) the store configured by `config.persist`
    /// and recovers the server state from it: latest snapshot, then the WAL
    /// tail replayed through the same deterministic apply path as a live run.
    ///
    /// `model` and `config` must match the ones the persisted server ran with;
    /// a budget-configuration mismatch is detected (the logged ε charges no
    /// longer match) and reported as [`StoreError::ReplayDiverged`].
    pub fn open<M: Model>(
        model: M,
        config: ServerConfig,
    ) -> Result<(Store, Server<M>, RecoveryReport)> {
        let persist = config.persist.clone();
        let dir = persist.data_dir.clone().ok_or_else(|| {
            StoreError::Core(crowd_core::CoreError::Config(
                "Store::open requires persist.data_dir".into(),
            ))
        })?;
        std::fs::create_dir_all(&dir)?;
        // A leftover temporary from a snapshot that crashed pre-rename is
        // garbage by construction.
        let _ = std::fs::remove_file(dir.join(snapshot::SNAPSHOT_TMP));

        let mut report = RecoveryReport::default();
        let (mut server, first_seq) = match snapshot::read(&dir)? {
            Some(snap) => {
                report.from_snapshot = true;
                (Server::restore(model, config, snap.state)?, snap.wal_seq)
            }
            None => (Server::new(model, config)?, 0),
        };

        // Segments below `first_seq` are fully covered by the snapshot; delete
        // them (they may survive a crash between snapshot-rename and segment
        // cleanup, and replaying them would double-apply their epochs).
        let mut live_segments = Vec::new();
        for seq in list_segments(&dir)? {
            if seq < first_seq {
                let _ = std::fs::remove_file(dir.join(wal::segment_file_name(seq)));
            } else {
                live_segments.push(seq);
            }
        }
        live_segments.sort_unstable();

        let mut active = None;
        for &seq in &live_segments {
            let contents = wal::read_segment(&dir.join(wal::segment_file_name(seq)))?;
            report.torn_tail |= contents.torn;
            for payload in &contents.records {
                replay_record(&mut server, payload, &mut report)?;
            }
            active = Some((seq, contents.valid_len));
        }

        let wal = match active {
            Some((seq, valid_len)) => WalWriter::reopen(&dir, seq, valid_len, persist.fsync)?,
            None => WalWriter::create(&dir, first_seq, persist.fsync)?,
        };

        Ok((
            Store {
                dir,
                snapshot_every: persist.snapshot_every_epochs,
                fsync: persist.fsync,
                wal,
                epochs_since_snapshot: 0,
                metrics: None,
            },
            server,
            report,
        ))
    }

    /// The data directory backing this store.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    /// The active WAL segment's sequence number.
    pub fn wal_seq(&self) -> u64 {
        self.wal.seq()
    }

    /// Attaches a crowd-scope registry; subsequent appends and snapshots
    /// record `wal_appends`, `wal_append_bytes`, `wal_append_us`, and
    /// `snapshot_us` into it.
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.metrics = Some(metrics);
    }

    /// Appends one epoch (and its ε charges) to the WAL. Must be called
    /// *before* the epoch is applied and its checkins acknowledged; a failure
    /// here means the epoch must not be applied (no ack without durability).
    pub fn log_epoch(
        &mut self,
        pre_iteration: u64,
        epoch: &EpochAggregate,
        charges: &[(u64, f64)],
    ) -> Result<()> {
        let record = codec::encode_epoch_record(pre_iteration, epoch, charges);
        self.append_record(&record, Some(pre_iteration))
    }

    /// Appends one accepted round submission to the WAL. Must be called
    /// *before* the submission is acknowledged — a crash mid-round then
    /// recovers the pending cohort exactly, and the later finalization epoch
    /// charges each contribution once.
    pub fn log_round_submit(
        &mut self,
        round_id: u64,
        submission: &PendingSubmission,
    ) -> Result<()> {
        let record = codec::encode_round_submit_record(round_id, submission);
        self.append_record(&record, None)
    }

    /// Appends a round boundary (finalize or expiry) to the WAL. Logged
    /// *before* the finalization epoch record, so replay advances the round
    /// (clearing its pending cohort) and then applies the epoch the live run
    /// produced from it.
    pub fn log_round_advance(&mut self, closed_round_id: u64) -> Result<()> {
        let record = codec::encode_round_advance_record(closed_round_id);
        self.append_record(&record, None)
    }

    fn append_record(&mut self, record: &[u8], span_iteration: Option<u64>) -> Result<()> {
        let start = self.metrics.as_ref().map(|m| m.start());
        self.wal.append(record)?;
        if let (Some(metrics), Some(start)) = (&self.metrics, start) {
            metrics.incr(CounterId::WalAppends);
            metrics.add(CounterId::WalAppendBytes, record.len() as u64);
            metrics.observe_since(HistogramId::WalAppendUs, start);
            if let Some(iteration) = span_iteration {
                metrics.span(Stage::WalAppend, iteration);
            }
        }
        Ok(())
    }

    /// Notes that a logged epoch has been applied; returns `true` when a
    /// periodic snapshot is now due.
    pub fn note_applied(&mut self) -> bool {
        self.epochs_since_snapshot += 1;
        self.snapshot_every > 0 && self.epochs_since_snapshot >= self.snapshot_every
    }

    /// Writes a full snapshot of `state`, rotates to a fresh WAL segment, and
    /// deletes every segment the snapshot supersedes (compaction).
    ///
    /// Failure ordering matters: the successor segment is created *before*
    /// the snapshot that names it, and the store only switches its writer
    /// once both durable steps succeeded. If either fails, the old segment
    /// stays active and the old snapshot stays authoritative — recovery never
    /// sees a snapshot whose `wal_seq` points past segments that still
    /// receive acknowledged epochs (which it would delete as superseded).
    pub fn snapshot(&mut self, state: &ServerState) -> Result<()> {
        let start = self.metrics.as_ref().map(|m| m.start());
        let next_seq = self.wal.seq() + 1;
        let new_wal = WalWriter::create(&self.dir, next_seq, self.fsync)?;
        snapshot::write(&self.dir, next_seq, state, self.fsync)?;
        self.wal = new_wal;
        for seq in list_segments(&self.dir)? {
            if seq < next_seq {
                let _ = std::fs::remove_file(self.dir.join(wal::segment_file_name(seq)));
            }
        }
        self.epochs_since_snapshot = 0;
        if let (Some(metrics), Some(start)) = (&self.metrics, start) {
            metrics.observe_since(HistogramId::SnapshotUs, start);
        }
        Ok(())
    }
}

/// Replays one WAL payload into `server`, enforcing the log's invariants.
fn replay_record<M: Model>(
    server: &mut Server<M>,
    payload: &[u8],
    report: &mut RecoveryReport,
) -> Result<()> {
    match codec::decode_record(payload).map_err(|e| StoreError::CorruptWal(e.0))? {
        codec::WalRecord::Epoch(record) => {
            if record.pre_iteration != server.iteration() {
                return Err(StoreError::CorruptWal(format!(
                    "record expects pre-apply iteration {}, server is at {}",
                    record.pre_iteration,
                    server.iteration()
                )));
            }
            let recomputed = server.epoch_charges(&record.epoch);
            if !charges_bitwise_equal(&recomputed, &record.charges) {
                return Err(StoreError::ReplayDiverged(format!(
                    "ε charges recomputed as {recomputed:?} but logged as {:?} — was the \
                     server restarted with a different budget configuration?",
                    record.charges
                )));
            }
            match server.apply_aggregate(&record.epoch) {
                Ok(_) => report.replayed_epochs += 1,
                // The live run logged this epoch and then identically refused
                // it; replay preserves that behavior (and its counter side
                // effects are zero, because apply_aggregate validates before
                // mutating).
                Err(_) => report.skipped_epochs += 1,
            }
        }
        codec::WalRecord::RoundSubmit {
            round_id,
            submission,
        } => {
            // The live run accepted this submission before logging it; replay
            // from the same pre-state must accept it identically.
            match server.round_submit(round_id, submission) {
                Ok(RoundAdmission::Accepted { .. }) => report.replayed_submissions += 1,
                Ok(other) => {
                    return Err(StoreError::CorruptWal(format!(
                        "logged round-{round_id} submission replayed as {other:?}"
                    )))
                }
                Err(e) => {
                    return Err(StoreError::CorruptWal(format!(
                        "logged round-{round_id} submission refused on replay: {e}"
                    )))
                }
            }
        }
        codec::WalRecord::RoundAdvance { closed_round_id } => {
            server.advance_round(closed_round_id).map_err(|e| {
                StoreError::CorruptWal(format!("round advance refused on replay: {e}"))
            })?;
            report.replayed_rounds += 1;
        }
    }
    Ok(())
}

fn charges_bitwise_equal(a: &[(u64, f64)], b: &[(u64, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(&(id_a, eps_a), &(id_b, eps_b))| {
                id_a == id_b && eps_a.to_bits() == eps_b.to_bits()
            })
}

fn list_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(wal::parse_segment_seq) {
            segments.push(seq);
        }
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_dir;
    use crowd_core::device::CheckinPayload;
    use crowd_core::server::EpochAggregate;
    use crowd_learning::MulticlassLogistic;
    use crowd_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 3;
    const CLASSES: usize = 2;

    fn model() -> MulticlassLogistic {
        MulticlassLogistic::new(DIM, CLASSES).unwrap()
    }

    fn config(dir: &Path) -> ServerConfig {
        ServerConfig::new()
            .with_rate_constant(1.0)
            .with_budget(0.25, f64::INFINITY)
            .with_data_dir(dir)
            .with_snapshot_every(4)
    }

    fn payload(device_id: u64, step: u64, rng: &mut StdRng) -> CheckinPayload {
        CheckinPayload {
            device_id,
            checkout_iteration: step,
            nonce: 0,
            gradient: Vector::from_vec(
                (0..DIM * CLASSES)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
            .into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        }
    }

    /// Logs and applies one singleton epoch through the store protocol.
    fn durable_checkin(
        store: &mut Store,
        server: &mut Server<MulticlassLogistic>,
        p: &CheckinPayload,
    ) {
        let epoch = EpochAggregate::from_payload(p);
        let charges = server.epoch_charges(&epoch);
        store
            .log_epoch(server.iteration(), &epoch, &charges)
            .unwrap();
        server.apply_aggregate(&epoch).unwrap();
        if store.note_applied() {
            store.snapshot(&server.export_state()).unwrap();
        }
    }

    /// The reference: the same checkin stream applied to a volatile server.
    fn reference_state(n: usize) -> ServerState {
        let mut server = Server::new(
            model(),
            ServerConfig::new()
                .with_rate_constant(1.0)
                .with_budget(0.25, f64::INFINITY),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..n {
            let p = payload(step as u64 % 5, step as u64, &mut rng);
            server
                .apply_aggregate(&EpochAggregate::from_payload(&p))
                .unwrap();
        }
        server.export_state()
    }

    #[test]
    fn fresh_store_recovers_nothing() {
        let dir = temp_dir("store-fresh");
        let (store, server, report) = Store::open(model(), config(&dir)).unwrap();
        assert!(!report.recovered());
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(server.iteration(), 0);
        assert_eq!(store.wal_seq(), 0);
        assert_eq!(store.data_dir(), dir.as_path());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_recovery_is_bitwise_identical_at_every_point() {
        // 11 checkins crosses two snapshot boundaries (snapshot_every = 4), so
        // the crash points cover: WAL-only, snapshot-only, snapshot + tail.
        let total = 11usize;
        for crash_after in [1usize, 3, 4, 5, 8, 10, 11] {
            let dir = temp_dir(&format!("store-crash-{crash_after}"));
            let (mut store, mut server, _) = Store::open(model(), config(&dir)).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            for step in 0..crash_after {
                let p = payload(step as u64 % 5, step as u64, &mut rng);
                durable_checkin(&mut store, &mut server, &p);
            }
            let at_crash = server.export_state();
            // Crash: drop both without any graceful checkpoint.
            drop(store);
            drop(server);

            let (mut store, mut server, report) = Store::open(model(), config(&dir)).unwrap();
            assert!(report.recovered());
            assert_eq!(report.skipped_epochs, 0);
            assert_eq!(
                server.export_state(),
                at_crash,
                "recovery at crash point {crash_after} must be bitwise identical"
            );
            assert_eq!(server.params().as_slice(), at_crash.params.as_slice());

            // Resuming the stream lands exactly on the uninterrupted run.
            for step in crash_after..total {
                let p = payload(step as u64 % 5, step as u64, &mut rng);
                durable_checkin(&mut store, &mut server, &p);
            }
            assert_eq!(server.export_state(), reference_state(total));
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_epoch() {
        let dir = temp_dir("store-torn");
        let (mut store, mut server, _) = Store::open(model(), config(&dir)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut states = vec![server.export_state()];
        for step in 0..3 {
            let p = payload(step as u64, step as u64, &mut rng);
            durable_checkin(&mut store, &mut server, &p);
            states.push(server.export_state());
        }
        let wal_path = dir.join(wal::segment_file_name(store.wal_seq()));
        drop(store);
        drop(server);
        // Tear bytes off the final record, as a crash mid-append would.
        let len = std::fs::metadata(&wal_path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let (_store, server, report) = Store::open(model(), config(&dir)).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed_epochs, 2);
        assert_eq!(server.export_state(), states[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotation_compacts_the_log() {
        let dir = temp_dir("store-rotate");
        let (mut store, mut server, _) = Store::open(model(), config(&dir)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..9 {
            let p = payload(step as u64, step as u64, &mut rng);
            durable_checkin(&mut store, &mut server, &p);
        }
        // Two snapshots happened (after epochs 4 and 8): only the newest
        // segment survives, and it holds exactly the one post-snapshot epoch.
        assert_eq!(store.wal_seq(), 2);
        assert_eq!(list_segments(&dir).unwrap(), vec![2]);
        let contents = wal::read_segment(&dir.join(wal::segment_file_name(2))).unwrap();
        assert_eq!(contents.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_config_mismatch_is_detected_on_replay() {
        let dir = temp_dir("store-diverge");
        let (mut store, mut server, _) = Store::open(model(), config(&dir)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let p = payload(0, 0, &mut rng);
        durable_checkin(&mut store, &mut server, &p);
        drop(store);
        drop(server);
        // Restart with a different per-checkin ε: the logged charges no longer
        // match what replay recomputes.
        let altered = config(&dir).with_budget(0.5, f64::INFINITY);
        match Store::open(model(), altered) {
            Err(StoreError::ReplayDiverged(_)) => {}
            other => panic!("expected ReplayDiverged, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_sequencing_violation_is_corruption() {
        let dir = temp_dir("store-seq");
        let (mut store, server, _) = Store::open(model(), config(&dir)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let p = payload(0, 0, &mut rng);
        let epoch = EpochAggregate::from_payload(&p);
        let charges = server.epoch_charges(&epoch);
        // Log an epoch claiming the wrong pre-apply iteration.
        store.log_epoch(5, &epoch, &charges).unwrap();
        drop(store);
        drop(server);
        match Store::open(model(), config(&dir)) {
            Err(StoreError::CorruptWal(_)) => {}
            other => panic!("expected CorruptWal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_without_data_dir_is_an_error() {
        let no_dir = ServerConfig::new();
        assert!(Store::open(model(), no_dir).is_err());
    }

    fn round_config(dir: &Path) -> ServerConfig {
        config(dir).with_rounds(
            crowd_core::RoundSettings::new(5)
                .with_select_fraction(1.0)
                .with_deadline_epochs(100),
        )
    }

    /// A well-formed masked submission for the open round.
    fn round_submission(server: &Server<MulticlassLogistic>, device_id: u64) -> PendingSubmission {
        let info = server.round_info().unwrap();
        let cohort = server.round_cohort().unwrap().to_vec();
        let dim = DIM * CLASSES;
        let gradient: Vec<f64> = (0..dim)
            .map(|i| (device_id as f64 + 1.0) * 0.25 + i as f64 * 0.125)
            .collect();
        let masks = crowd_rounds::net_mask(info.seed, device_id, &cohort, dim);
        PendingSubmission {
            device_id,
            nonce: 1000 + device_id,
            checkout_iteration: server.iteration(),
            words: crowd_rounds::mask(&gradient, &masks),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        }
    }

    /// Accepts a submission into the open round and logs it (the live
    /// runtime's order: admit, then make durable, then acknowledge).
    fn durable_round_submit(
        store: &mut Store,
        server: &mut Server<MulticlassLogistic>,
        device_id: u64,
    ) {
        let info = server.round_info().unwrap();
        let sub = round_submission(server, device_id);
        match server.round_submit(info.round_id, sub.clone()).unwrap() {
            RoundAdmission::Accepted { .. } => {}
            other => panic!("expected acceptance, got {other:?}"),
        }
        store.log_round_submit(info.round_id, &sub).unwrap();
    }

    /// Finalizes the open round through the store protocol: advance record,
    /// then the finalization epoch, then the apply.
    fn durable_round_finalize(store: &mut Store, server: &mut Server<MulticlassLogistic>) {
        let (closed, epoch) = server.finalize_round().unwrap();
        store.log_round_advance(closed).unwrap();
        if let Some(epoch) = epoch {
            let charges = server.epoch_charges(&epoch);
            store
                .log_epoch(server.iteration(), &epoch, &charges)
                .unwrap();
            server.apply_aggregate(&epoch).unwrap();
        }
    }

    #[test]
    fn mid_round_crash_recovers_the_pending_cohort() {
        let dir = temp_dir("store-round-crash");
        let (mut store, mut server, _) = Store::open(model(), round_config(&dir)).unwrap();
        for device_id in 0..3u64 {
            durable_round_submit(&mut store, &mut server, device_id);
        }
        let at_crash = server.export_state();
        assert_eq!(at_crash.round.as_ref().unwrap().pending.len(), 3);
        drop(store);
        drop(server);

        let (mut store, mut server, report) = Store::open(model(), round_config(&dir)).unwrap();
        assert!(report.recovered());
        assert_eq!(report.replayed_submissions, 3);
        assert_eq!(server.export_state(), at_crash);

        // The recovered round finalizes exactly as the uninterrupted one.
        for device_id in 3..5u64 {
            durable_round_submit(&mut store, &mut server, device_id);
        }
        durable_round_finalize(&mut store, &mut server);
        let finalized = server.export_state();
        assert_eq!(server.iteration(), 1);
        assert_eq!(finalized.round.as_ref().unwrap().round_id, 2);
        assert!(finalized.round.as_ref().unwrap().pending.is_empty());

        // Crash again after finalization: advance + epoch replay on top of
        // the submissions.
        drop(store);
        drop(server);
        let (_store, server, report) = Store::open(model(), round_config(&dir)).unwrap();
        assert_eq!(report.replayed_submissions, 5);
        assert_eq!(report.replayed_rounds, 1);
        assert_eq!(report.replayed_epochs, 1);
        assert_eq!(server.export_state(), finalized);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_round_snapshot_captures_pending_submissions() {
        let dir = temp_dir("store-round-snapshot");
        let (mut store, mut server, _) = Store::open(model(), round_config(&dir)).unwrap();
        for device_id in 0..2u64 {
            durable_round_submit(&mut store, &mut server, device_id);
        }
        // Snapshot mid-round: the WAL compaction must not lose the cohort.
        store.snapshot(&server.export_state()).unwrap();
        let at_crash = server.export_state();
        drop(store);
        drop(server);

        let (_store, server, report) = Store::open(model(), round_config(&dir)).unwrap();
        assert!(report.from_snapshot);
        assert_eq!(report.replayed_submissions, 0);
        assert_eq!(server.export_state(), at_crash);
        assert_eq!(
            server.export_state().round.unwrap().pending.len(),
            2,
            "pending submissions must survive snapshot compaction"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_shutdown_checkpoint_makes_recovery_snapshot_only() {
        let dir = temp_dir("store-clean");
        let (mut store, mut server, _) = Store::open(model(), config(&dir)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..3 {
            let p = payload(step as u64, step as u64, &mut rng);
            durable_checkin(&mut store, &mut server, &p);
        }
        // Clean shutdown: checkpoint, which compacts the WAL away.
        store.snapshot(&server.export_state()).unwrap();
        let expected = server.export_state();
        drop(store);
        drop(server);
        let (_store, recovered, report) = Store::open(model(), config(&dir)).unwrap();
        assert!(report.from_snapshot);
        assert_eq!(report.replayed_epochs, 0);
        assert!(!report.torn_tail);
        assert_eq!(recovered.export_state(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
