//! Deterministic binary encoding of persisted state, plus CRC-32 framing
//! support.
//!
//! Layout conventions mirror `crowd-proto`: all integers little-endian, `f64`
//! as IEEE-754 bit patterns (bitwise, never printed and re-parsed), vectors
//! prefixed by a `u32` element count. Everything here is pure byte-level code;
//! file handling lives in [`crate::wal`] and [`crate::snapshot`].

use crowd_core::server::{
    DeviceEpochStats, DeviceProgress, EpochAggregate, PendingSubmission, RoundStateSnapshot,
    ServerState,
};
use crowd_learning::LearningRate;
use crowd_linalg::Vector;

/// Maximum element count accepted for any decoded vector. Prevents a corrupt
/// length prefix from triggering a huge allocation.
pub const MAX_VEC_LEN: usize = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the polynomial used by zip/png/ethernet)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------------

/// Why a decode failed. Converted to [`crate::StoreError`] by the callers,
/// which know whether they are reading a snapshot or a WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl DecodeError {
    fn truncated(what: &str) -> Self {
        DecodeError(format!("truncated while reading {what}"))
    }
}

/// Decode result alias.
pub type DecodeResult<T> = std::result::Result<T, DecodeError>;

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_f64_slice(buf: &mut Vec<u8>, values: &[f64]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_f64(buf, v);
    }
}

pub(crate) fn put_i64_slice(buf: &mut Vec<u8>, values: &[i64]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_i64(buf, v);
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> DecodeResult<&'a [u8]> {
    if buf.len() < n {
        return Err(DecodeError::truncated(what));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn get_u8(buf: &mut &[u8], what: &str) -> DecodeResult<u8> {
    Ok(take(buf, 1, what)?[0])
}

pub(crate) fn get_u32(buf: &mut &[u8], what: &str) -> DecodeResult<u32> {
    let bytes = take(buf, 4, what)?;
    match bytes.try_into() {
        Ok(arr) => Ok(u32::from_le_bytes(arr)),
        Err(_) => Err(DecodeError::truncated(what)),
    }
}

pub(crate) fn get_u64(buf: &mut &[u8], what: &str) -> DecodeResult<u64> {
    let bytes = take(buf, 8, what)?;
    match bytes.try_into() {
        Ok(arr) => Ok(u64::from_le_bytes(arr)),
        Err(_) => Err(DecodeError::truncated(what)),
    }
}

pub(crate) fn get_i64(buf: &mut &[u8], what: &str) -> DecodeResult<i64> {
    let bytes = take(buf, 8, what)?;
    match bytes.try_into() {
        Ok(arr) => Ok(i64::from_le_bytes(arr)),
        Err(_) => Err(DecodeError::truncated(what)),
    }
}

pub(crate) fn get_f64(buf: &mut &[u8], what: &str) -> DecodeResult<f64> {
    Ok(f64::from_bits(get_u64(buf, what)?))
}

fn get_len(buf: &mut &[u8], what: &str) -> DecodeResult<usize> {
    let len = get_u32(buf, what)? as usize;
    if len > MAX_VEC_LEN {
        return Err(DecodeError(format!(
            "{what} declares {len} elements, cap is {MAX_VEC_LEN}"
        )));
    }
    Ok(len)
}

pub(crate) fn get_f64_vec(buf: &mut &[u8], what: &str) -> DecodeResult<Vec<f64>> {
    let len = get_len(buf, what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_f64(buf, what)?);
    }
    Ok(out)
}

pub(crate) fn get_i64_vec(buf: &mut &[u8], what: &str) -> DecodeResult<Vec<i64>> {
    let len = get_len(buf, what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_i64(buf, what)?);
    }
    Ok(out)
}

pub(crate) fn put_u64_slice(buf: &mut Vec<u8>, values: &[u64]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_u64(buf, v);
    }
}

pub(crate) fn get_u64_vec(buf: &mut &[u8], what: &str) -> DecodeResult<Vec<u64>> {
    let len = get_len(buf, what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_u64(buf, what)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// EpochAggregate
// ---------------------------------------------------------------------------

pub(crate) fn put_epoch(buf: &mut Vec<u8>, epoch: &EpochAggregate) {
    put_f64_slice(buf, epoch.gradient_sum.as_slice());
    put_u64(buf, epoch.checkin_count);
    put_u64(buf, epoch.min_checkout_iteration);
    put_u32(buf, epoch.device_stats.len() as u32);
    for stats in &epoch.device_stats {
        put_u64(buf, stats.device_id);
        put_u64(buf, stats.checkins);
        put_u64(buf, stats.samples);
        put_i64(buf, stats.errors);
        put_i64_slice(buf, &stats.label_counts);
    }
}

pub(crate) fn get_epoch(buf: &mut &[u8]) -> DecodeResult<EpochAggregate> {
    let gradient_sum = Vector::from_vec(get_f64_vec(buf, "epoch gradient")?);
    let checkin_count = get_u64(buf, "epoch checkin_count")?;
    let min_checkout_iteration = get_u64(buf, "epoch min_checkout_iteration")?;
    let devices = get_len(buf, "epoch device count")?;
    let mut device_stats = Vec::with_capacity(devices);
    for _ in 0..devices {
        device_stats.push(DeviceEpochStats {
            device_id: get_u64(buf, "device id")?,
            checkins: get_u64(buf, "device checkins")?,
            samples: get_u64(buf, "device samples")?,
            errors: get_i64(buf, "device errors")?,
            label_counts: get_i64_vec(buf, "device label counts")?,
        });
    }
    Ok(EpochAggregate {
        gradient_sum,
        checkin_count,
        min_checkout_iteration,
        device_stats,
    })
}

// ---------------------------------------------------------------------------
// WAL record payload
// ---------------------------------------------------------------------------

/// One decoded WAL record: an epoch that was (about to be) applied at
/// `pre_iteration`, together with the ε charges the apply incurs.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Server iteration immediately before the epoch was applied.
    pub pre_iteration: u64,
    /// The merged aggregate, exactly as handed to `apply_aggregate`.
    pub epoch: EpochAggregate,
    /// Per-device ε charges `(device_id, ε)`, ascending by device id. Replay
    /// recomputes these from the epoch and the server config and refuses to
    /// proceed if they differ — catching a restart under a different budget
    /// configuration before it silently corrupts the ledger.
    pub charges: Vec<(u64, f64)>,
}

/// One decoded WAL record of any kind (wire of the round protocol's
/// durability: submissions and round advances are logged alongside epochs so
/// a crash mid-round recovers the pending cohort exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An applied (or about-to-be-applied) aggregation epoch.
    Epoch(EpochRecord),
    /// A masked round submission accepted into the open round.
    RoundSubmit {
        /// The round the submission was accepted into.
        round_id: u64,
        /// The submission exactly as the server holds it pending.
        submission: PendingSubmission,
    },
    /// The open round closed (finalized or expired); its successor opened.
    /// The finalization epoch, when non-empty, is the following
    /// [`WalRecord::Epoch`].
    RoundAdvance {
        /// The round that closed.
        closed_round_id: u64,
    },
}

const RECORD_KIND_EPOCH: u8 = 1;
const RECORD_KIND_ROUND_SUBMIT: u8 = 2;
const RECORD_KIND_ROUND_ADVANCE: u8 = 3;

/// Encodes an epoch record into a WAL payload. Takes the parts by reference —
/// this runs on the durable write path under the core server lock, so it must
/// not clone the gradient vector just to serialize it.
pub fn encode_epoch_record(
    pre_iteration: u64,
    epoch: &EpochAggregate,
    charges: &[(u64, f64)],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + epoch_dim_hint(epoch));
    put_u8(&mut buf, RECORD_KIND_EPOCH);
    put_u64(&mut buf, pre_iteration);
    put_epoch(&mut buf, epoch);
    put_u32(&mut buf, charges.len() as u32);
    for &(device_id, eps) in charges {
        put_u64(&mut buf, device_id);
        put_f64(&mut buf, eps);
    }
    buf
}

fn epoch_dim_hint(epoch: &EpochAggregate) -> usize {
    8 * epoch.gradient_sum.len() + 64 * epoch.device_stats.len()
}

fn put_submission(buf: &mut Vec<u8>, sub: &PendingSubmission) {
    put_u64(buf, sub.device_id);
    put_u64(buf, sub.nonce);
    put_u64(buf, sub.checkout_iteration);
    put_u64_slice(buf, &sub.words);
    put_u32(buf, sub.num_samples);
    put_i64(buf, sub.error_count);
    put_i64_slice(buf, &sub.label_counts);
}

fn get_submission(buf: &mut &[u8]) -> DecodeResult<PendingSubmission> {
    Ok(PendingSubmission {
        device_id: get_u64(buf, "submission device id")?,
        nonce: get_u64(buf, "submission nonce")?,
        checkout_iteration: get_u64(buf, "submission checkout iteration")?,
        words: get_u64_vec(buf, "submission words")?,
        num_samples: get_u32(buf, "submission num_samples")?,
        error_count: get_i64(buf, "submission error_count")?,
        label_counts: get_i64_vec(buf, "submission label counts")?,
    })
}

/// Encodes a round-submission record into a WAL payload.
pub fn encode_round_submit_record(round_id: u64, submission: &PendingSubmission) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 8 * submission.words.len());
    put_u8(&mut buf, RECORD_KIND_ROUND_SUBMIT);
    put_u64(&mut buf, round_id);
    put_submission(&mut buf, submission);
    buf
}

/// Encodes a round-advance record into a WAL payload.
pub fn encode_round_advance_record(closed_round_id: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9);
    put_u8(&mut buf, RECORD_KIND_ROUND_ADVANCE);
    put_u64(&mut buf, closed_round_id);
    buf
}

/// Decodes any WAL payload produced by the `encode_*_record` functions.
pub fn decode_record(mut buf: &[u8]) -> DecodeResult<WalRecord> {
    let kind = get_u8(&mut buf, "record kind")?;
    let record = match kind {
        RECORD_KIND_EPOCH => {
            let pre_iteration = get_u64(&mut buf, "record pre_iteration")?;
            let epoch = get_epoch(&mut buf)?;
            let count = get_len(&mut buf, "charge count")?;
            let mut charges = Vec::with_capacity(count);
            for _ in 0..count {
                let device_id = get_u64(&mut buf, "charge device id")?;
                let eps = get_f64(&mut buf, "charge epsilon")?;
                charges.push((device_id, eps));
            }
            WalRecord::Epoch(EpochRecord {
                pre_iteration,
                epoch,
                charges,
            })
        }
        RECORD_KIND_ROUND_SUBMIT => WalRecord::RoundSubmit {
            round_id: get_u64(&mut buf, "record round id")?,
            submission: get_submission(&mut buf)?,
        },
        RECORD_KIND_ROUND_ADVANCE => WalRecord::RoundAdvance {
            closed_round_id: get_u64(&mut buf, "record closed round id")?,
        },
        other => return Err(DecodeError(format!("unknown WAL record kind {other}"))),
    };
    if !buf.is_empty() {
        return Err(DecodeError(format!(
            "{} trailing bytes after WAL record",
            buf.len()
        )));
    }
    Ok(record)
}

/// Decodes a WAL payload produced by [`encode_epoch_record`].
pub fn decode_epoch_record(buf: &[u8]) -> DecodeResult<EpochRecord> {
    match decode_record(buf)? {
        WalRecord::Epoch(record) => Ok(record),
        other => Err(DecodeError(format!(
            "expected an epoch record, found {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// ServerState
// ---------------------------------------------------------------------------

const SCHEDULE_CONSTANT: u8 = 0;
const SCHEDULE_INV_SQRT: u8 = 1;
const SCHEDULE_INV_T: u8 = 2;
const SCHEDULE_ADAGRAD: u8 = 3;

fn put_schedule(buf: &mut Vec<u8>, schedule: &LearningRate) {
    match schedule {
        LearningRate::Constant { c } => {
            put_u8(buf, SCHEDULE_CONSTANT);
            put_f64(buf, *c);
        }
        LearningRate::InvSqrt { c } => {
            put_u8(buf, SCHEDULE_INV_SQRT);
            put_f64(buf, *c);
        }
        LearningRate::InvT { c } => {
            put_u8(buf, SCHEDULE_INV_T);
            put_f64(buf, *c);
        }
        LearningRate::AdaGrad {
            c,
            delta,
            accumulated,
        } => {
            put_u8(buf, SCHEDULE_ADAGRAD);
            put_f64(buf, *c);
            put_f64(buf, *delta);
            put_f64_slice(buf, accumulated.as_slice());
        }
    }
}

fn get_schedule(buf: &mut &[u8]) -> DecodeResult<LearningRate> {
    let tag = get_u8(buf, "schedule tag")?;
    Ok(match tag {
        SCHEDULE_CONSTANT => LearningRate::Constant {
            c: get_f64(buf, "schedule c")?,
        },
        SCHEDULE_INV_SQRT => LearningRate::InvSqrt {
            c: get_f64(buf, "schedule c")?,
        },
        SCHEDULE_INV_T => LearningRate::InvT {
            c: get_f64(buf, "schedule c")?,
        },
        SCHEDULE_ADAGRAD => LearningRate::AdaGrad {
            c: get_f64(buf, "schedule c")?,
            delta: get_f64(buf, "schedule delta")?,
            accumulated: Vector::from_vec(get_f64_vec(buf, "schedule accumulator")?),
        },
        other => return Err(DecodeError(format!("unknown schedule tag {other}"))),
    })
}

/// Encodes a full [`ServerState`] (the snapshot body, without file framing).
pub fn encode_state(state: &ServerState) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + 8 * state.params.len());
    put_f64_slice(&mut buf, state.params.as_slice());
    put_u64(&mut buf, state.iteration);
    put_u64(&mut buf, state.total_samples);
    put_i64(&mut buf, state.total_errors);
    put_u32(&mut buf, state.progress.len() as u32);
    for (device_id, progress) in &state.progress {
        put_u64(&mut buf, *device_id);
        put_u64(&mut buf, progress.samples);
        put_i64(&mut buf, progress.errors);
        put_u64(&mut buf, progress.checkins);
        put_i64_slice(&mut buf, &progress.label_counts);
    }
    put_schedule(&mut buf, &state.schedule);
    put_u32(&mut buf, state.budget_ledger.len() as u32);
    for &(device_id, spent) in &state.budget_ledger {
        put_u64(&mut buf, device_id);
        put_f64(&mut buf, spent);
    }
    match &state.round {
        None => put_u8(&mut buf, 0),
        Some(round) => {
            put_u8(&mut buf, 1);
            put_u64(&mut buf, round.round_id);
            put_u64(&mut buf, round.opened_iteration);
            put_u32(&mut buf, round.pending.len() as u32);
            for sub in &round.pending {
                put_submission(&mut buf, sub);
            }
        }
    }
    put_u32(&mut buf, state.last_round.len() as u32);
    for &(device_id, round_id, nonce) in &state.last_round {
        put_u64(&mut buf, device_id);
        put_u64(&mut buf, round_id);
        put_u64(&mut buf, nonce);
    }
    buf
}

/// Decodes a snapshot body produced by [`encode_state`].
pub fn decode_state(mut buf: &[u8]) -> DecodeResult<ServerState> {
    let params = Vector::from_vec(get_f64_vec(&mut buf, "state params")?);
    let iteration = get_u64(&mut buf, "state iteration")?;
    let total_samples = get_u64(&mut buf, "state total_samples")?;
    let total_errors = get_i64(&mut buf, "state total_errors")?;
    let devices = get_len(&mut buf, "state device count")?;
    let mut progress = Vec::with_capacity(devices);
    for _ in 0..devices {
        let device_id = get_u64(&mut buf, "progress device id")?;
        let samples = get_u64(&mut buf, "progress samples")?;
        let errors = get_i64(&mut buf, "progress errors")?;
        let checkins = get_u64(&mut buf, "progress checkins")?;
        let label_counts = get_i64_vec(&mut buf, "progress label counts")?;
        progress.push((
            device_id,
            DeviceProgress {
                samples,
                errors,
                label_counts,
                checkins,
            },
        ));
    }
    let schedule = get_schedule(&mut buf)?;
    let entries = get_len(&mut buf, "ledger entry count")?;
    let mut budget_ledger = Vec::with_capacity(entries);
    for _ in 0..entries {
        let device_id = get_u64(&mut buf, "ledger device id")?;
        let spent = get_f64(&mut buf, "ledger spent")?;
        budget_ledger.push((device_id, spent));
    }
    let round = match get_u8(&mut buf, "round presence")? {
        0 => None,
        1 => {
            let round_id = get_u64(&mut buf, "round id")?;
            let opened_iteration = get_u64(&mut buf, "round opened iteration")?;
            let count = get_len(&mut buf, "round pending count")?;
            let mut pending = Vec::with_capacity(count);
            for _ in 0..count {
                pending.push(get_submission(&mut buf)?);
            }
            Some(RoundStateSnapshot {
                round_id,
                opened_iteration,
                pending,
            })
        }
        other => return Err(DecodeError(format!("invalid round presence byte {other}"))),
    };
    let entries = get_len(&mut buf, "last-round entry count")?;
    let mut last_round = Vec::with_capacity(entries);
    for _ in 0..entries {
        let device_id = get_u64(&mut buf, "last-round device id")?;
        let round_id = get_u64(&mut buf, "last-round round id")?;
        let nonce = get_u64(&mut buf, "last-round nonce")?;
        last_round.push((device_id, round_id, nonce));
    }
    if !buf.is_empty() {
        return Err(DecodeError(format!(
            "{} trailing bytes after server state",
            buf.len()
        )));
    }
    Ok(ServerState {
        params,
        iteration,
        total_samples,
        total_errors,
        progress,
        schedule,
        budget_ledger,
        round,
        last_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ServerState {
        ServerState {
            params: Vector::from_vec(vec![0.25, -1.5, f64::MIN_POSITIVE, 0.0]),
            iteration: 42,
            total_samples: 1234,
            total_errors: -7,
            progress: vec![
                (
                    3,
                    DeviceProgress {
                        samples: 10,
                        errors: 2,
                        label_counts: vec![4, -1, 7],
                        checkins: 5,
                    },
                ),
                (
                    9,
                    DeviceProgress {
                        samples: 1,
                        errors: 0,
                        label_counts: vec![1, 0, 0],
                        checkins: 1,
                    },
                ),
            ],
            schedule: LearningRate::AdaGrad {
                c: 0.5,
                delta: 1e-8,
                accumulated: Vector::from_vec(vec![0.125, 2.0, 0.0, 3.5]),
            },
            budget_ledger: vec![(3, 1.25), (9, 0.25)],
            round: Some(RoundStateSnapshot {
                round_id: 4,
                opened_iteration: 40,
                pending: vec![PendingSubmission {
                    device_id: 9,
                    nonce: 0x0102_0304,
                    checkout_iteration: 41,
                    words: vec![0, u64::MAX, 0x0807_0605_0403_0201],
                    num_samples: 16,
                    error_count: 3,
                    label_counts: vec![7, 9],
                }],
            }),
            last_round: vec![(3, 3, 99), (9, 4, 0x0102_0304)],
        }
    }

    fn sample_record() -> EpochRecord {
        EpochRecord {
            pre_iteration: 17,
            epoch: EpochAggregate {
                gradient_sum: Vector::from_vec(vec![1.0, -2.5, 0.75]),
                checkin_count: 3,
                min_checkout_iteration: 15,
                device_stats: vec![
                    DeviceEpochStats {
                        device_id: 1,
                        checkins: 2,
                        samples: 8,
                        errors: -1,
                        label_counts: vec![3, 5],
                    },
                    DeviceEpochStats {
                        device_id: 4,
                        checkins: 1,
                        samples: 4,
                        errors: 0,
                        label_counts: vec![2, 2],
                    },
                ],
            },
            charges: vec![(1, 0.2), (4, 0.1)],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn state_round_trips_bitwise() {
        let state = sample_state();
        let bytes = encode_state(&state);
        let decoded = decode_state(&bytes).unwrap();
        assert_eq!(decoded, state);
        // Encoding is deterministic: same state, same bytes.
        assert_eq!(encode_state(&decoded), bytes);
    }

    #[test]
    fn scalar_schedules_round_trip() {
        for schedule in [
            LearningRate::Constant { c: 0.5 },
            LearningRate::InvSqrt { c: 2.0 },
            LearningRate::InvT { c: 1.5 },
        ] {
            let mut state = sample_state();
            state.schedule = schedule.clone();
            let decoded = decode_state(&encode_state(&state)).unwrap();
            assert_eq!(decoded.schedule, schedule);
        }
    }

    #[test]
    fn epoch_record_round_trips_bitwise() {
        let record = sample_record();
        let bytes = encode_epoch_record(record.pre_iteration, &record.epoch, &record.charges);
        assert_eq!(decode_epoch_record(&bytes).unwrap(), record);
    }

    #[test]
    fn round_records_round_trip() {
        let submission = PendingSubmission {
            device_id: 12,
            nonce: 777,
            checkout_iteration: 55,
            words: vec![1, 2, u64::MAX],
            num_samples: 8,
            error_count: -2,
            label_counts: vec![3, 5],
        };
        let bytes = encode_round_submit_record(6, &submission);
        assert_eq!(
            decode_record(&bytes).unwrap(),
            WalRecord::RoundSubmit {
                round_id: 6,
                submission,
            }
        );
        // A submit record is not an epoch record.
        assert!(decode_epoch_record(&bytes).is_err());

        let bytes = encode_round_advance_record(6);
        assert_eq!(
            decode_record(&bytes).unwrap(),
            WalRecord::RoundAdvance { closed_round_id: 6 }
        );
        assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn stateless_round_state_round_trips() {
        let mut state = sample_state();
        state.round = None;
        state.last_round.clear();
        let decoded = decode_state(&encode_state(&state)).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let bytes = encode_state(&sample_state());
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_state(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_state(&padded).is_err());

        let sample = sample_record();
        let record = encode_epoch_record(sample.pre_iteration, &sample.epoch, &sample.charges);
        assert!(decode_epoch_record(&record[..record.len() - 1]).is_err());
        let mut padded = record.clone();
        padded.push(9);
        assert!(decode_epoch_record(&padded).is_err());
        // Unknown record kind.
        let mut bad_kind = record;
        bad_kind[0] = 99;
        assert!(decode_epoch_record(&bad_kind).is_err());
    }

    #[test]
    fn absurd_length_prefixes_are_capped() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(decode_state(&buf).is_err());
    }
}
