//! Chaos smoke test: seeded fault injection, churn, and server crashes over
//! the real TCP stack, with the standing invariants checked at the end.
//!
//! Phase 1 runs a **transport-only** fault plan (dropped, delayed,
//! duplicated, and truncated frames on a stable fleet) and asserts the run
//! lands *bitwise* on a fault-free reference of the same seed — the retry +
//! dedup-nonce machinery makes every logical checkin apply exactly once.
//!
//! Phase 2 runs the **full storm** — transport faults plus device churn
//! (late joiners, retirements, stragglers) plus scripted crash/restart points
//! on a durable server — and asserts the run terminates with an intact
//! ε ledger: exactly one per-checkin ε charged per acknowledged checkin,
//! through every duplicate, retry, and WAL recovery.
//!
//! Run with: `cargo run --release --example chaos_demo [seed]`
//! (CI runs this as the chaos smoke step; it exits non-zero on any
//! invariant violation.)

use crowd_ml::net::chaos::{ChaosCluster, ChaosReport};
use crowd_ml::sim::chaos::FaultPlan;

/// `eps` is the cluster's configured `per_checkin_epsilon`.
fn check_ledger(report: &ChaosReport, eps: f64) {
    for &(device, charged) in &report.ledger {
        let expected = eps * report.acked_checkins[device as usize] as f64;
        assert!(
            (charged - expected).abs() < 1e-9,
            "device {device} charged ε {charged}, expected ε·acked = {expected}"
        );
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // Phase 1: transport-only chaos vs the fault-free reference.
    let reference_cluster = ChaosCluster::new(FaultPlan::fault_free(seed));
    let eps = reference_cluster.per_checkin_epsilon;
    let reference = reference_cluster.run().expect("reference run");
    let plan = FaultPlan::transport_only(seed);
    println!("phase 1: {}", plan.describe());
    let chaotic = ChaosCluster::new(plan).run().expect("transport chaos run");
    println!(
        "  reference: {} iterations, {} samples; chaotic: {} iterations, {} dedup replays",
        reference.iterations, reference.total_samples, chaotic.iterations, chaotic.dedup_replays
    );
    assert_eq!(
        chaotic.params.as_slice(),
        reference.params.as_slice(),
        "transport faults changed the final parameters"
    );
    assert_eq!(chaotic.iterations, reference.iterations);
    assert_eq!(chaotic.ledger, reference.ledger);
    check_ledger(&chaotic, eps);
    println!("  bitwise match with the fault-free reference — OK");

    // Phase 2: the full storm on a durable server.
    let dir = std::env::temp_dir().join(format!("crowd-chaos-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create data dir");
    let plan = FaultPlan::full(seed, 24);
    println!("phase 2: {}", plan.describe());
    let earliest_crash = plan
        .crash
        .as_ref()
        .and_then(|c| c.points.first().copied())
        .expect("full plans script at least one crash point");
    let mut cluster = ChaosCluster::new(plan);
    cluster.server = cluster.server.with_epoch_size(2);
    cluster.data_dir = Some(dir.clone());
    let report = cluster.run().expect("full chaos run");
    println!(
        "  {} iterations, {} restarts, {} late joiners, {} retirements, ledger {:?}",
        report.iterations, report.restarts, report.late_joins, report.retired, report.ledger
    );
    // A crash point beyond what churn let the run reach legitimately never
    // fires; a restart is only owed when the earliest point was reachable.
    assert!(
        report.restarts > 0 || earliest_crash > report.iterations,
        "the run passed crash point {earliest_crash} without restarting"
    );
    check_ledger(&report, eps);
    let _ = std::fs::remove_dir_all(&dir);
    println!("  terminated with an intact ε ledger through churn and crashes — OK");

    // crowd-scope: dump the final incarnation's metric registry so the CI
    // smoke step can grep the catalogue and archive the dump as an artifact.
    assert!(report.metrics.get("checkins_applied") > 0);
    assert!(report.metrics.get("epoch_merges") > 0);
    println!("--- metrics dump (final server incarnation) ---");
    print!("{}", report.metrics.render_text());
    println!("--- end metrics dump ---");

    println!("chaos_demo: all invariants held (seed {seed})");
}
