//! Activity recognition on a simulated fleet of smartphones (§V-B of the paper).
//!
//! Seven simulated devices carry accelerometers sampled at 20 Hz; 3.2 s windows of
//! acceleration magnitude are turned into 64-bin FFT features and a sample is kept
//! only when the activity ("Still", "On Foot", "In Vehicle") changes. A 3-class
//! logistic regression is learned collaboratively with Crowd-ML and the
//! time-averaged online error is printed — the Fig. 3 curve.
//!
//! Run with: `cargo run --release --example activity_recognition`

use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_ml::data::activity::Activity;

fn main() {
    let devices = 7;
    let samples_per_device = 43; // ≈300 samples in total, as in the paper's figure

    println!("Activity recognition with Crowd-ML ({devices} devices)");
    println!("classes: {:?}", Activity::ALL.map(|a| a.name()));
    println!();

    for &c in &[1e-6, 1e-4, 1e-2, 1.0] {
        let config = ExperimentConfig::builder()
            .devices(devices)
            .minibatch(1)
            .rate_constant(c)
            .eval_points(5)
            .seed(42)
            .build();
        let experiment = CrowdMlExperiment::activity(samples_per_device, 200, config);
        let outcome = experiment.run().expect("activity experiment");

        let online = &outcome.online_error;
        let checkpoints = [10, 50, 100, 200, online.len() - 1];
        print!("c = {c:>8.0e}:  time-averaged error at sample ");
        for &i in &checkpoints {
            if i < online.len() {
                print!("{}:{:.2}  ", i + 1, online[i]);
            }
        }
        println!("| final test error {:.3}", outcome.final_test_error());
    }

    println!();
    println!("As in the paper, once the learning rate is large enough to move the weights,");
    println!("the classifier converges within a few samples per device. (On these synthetic");
    println!("traces the very small constants have not learned yet after ~300 samples;");
    println!("EXPERIMENTS.md discusses this deviation from Fig. 3.)");
}
