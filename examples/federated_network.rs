//! Crowd-ML over real sockets: a localhost TCP server plus a fleet of device
//! threads, mirroring the paper's smartphone/Apache prototype.
//!
//! Each device thread buffers its local samples, checks out parameters over TCP,
//! sanitizes its averaged gradient with the Laplace mechanism, and checks the
//! result back in. The server applies the projected SGD update and tracks the
//! privately estimated error rate.
//!
//! Run with: `cargo run --release --example federated_network`

use crowd_ml::core::config::{DeviceConfig, PrivacyConfig, ServerConfig};
use crowd_ml::data::partition::{partition, PartitionStrategy};
use crowd_ml::data::synthetic::GaussianMixtureSpec;
use crowd_ml::learning::metrics::error_rate;
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::net::LocalCluster;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 16;
    let classes = 4;
    let devices = 8;

    let mut rng = StdRng::seed_from_u64(3);
    let (train, test) = GaussianMixtureSpec::new(dim, classes)
        .with_train_size(2400)
        .with_test_size(600)
        .with_mean_scale(2.2)
        .with_noise_std(0.7)
        .generate(&mut rng)
        .expect("synthetic data");
    let partitions =
        partition(&train, devices, PartitionStrategy::Iid, &mut rng).expect("device partitions");

    println!("Starting a localhost Crowd-ML cluster: 1 server + {devices} device threads");

    // The server serves from the sharded aggregation runtime: 8 accumulator
    // stripes, a 256-deep ingest queue (overflow answered with Busy +
    // retry-after, which the device clients absorb with backoff).
    let server_config = ServerConfig::new()
        .with_rate_constant(2.0)
        .with_shard_count(8)
        .with_queue_bound(256);
    let cluster = LocalCluster::new(server_config)
        .with_device(DeviceConfig::new(10))
        .with_privacy(PrivacyConfig::with_total_epsilon(5.0))
        .with_seed(17);
    let report = cluster
        .run(dim, classes, &partitions)
        .expect("cluster run over TCP");

    println!("server applied {} updates", report.server_iterations);
    println!("devices reported {} samples in total", report.total_samples);
    println!(
        "aggregation runtime: {} epoch merges, {} busy rejections",
        report.runtime_stats.get("epoch_merges"),
        report.runtime_stats.get("busy_rejections"),
    );
    for (id, device) in report.device_reports.iter().enumerate() {
        println!(
            "  device {id}: observed {:>4} samples, completed {:>3} checkins",
            device.samples_observed, device.checkins
        );
    }

    let model = MulticlassLogistic::new(dim, classes).expect("model");
    let err = error_rate(&model, &report.params, &test).expect("evaluation");
    println!();
    println!("test error of the collaboratively learned model: {err:.3}");
    println!("(every gradient crossed the wire with eps = 5 local differential privacy)");
}
