//! Crash-and-restart smoke test for the durable server (`crowd-store`).
//!
//! Phase 1 starts a durable TCP server (WAL + snapshots under a data
//! directory) and runs device traffic against it, then **kills** the server
//! mid-experiment — a crash-stop with no final flush or checkpoint, leaving
//! the disk exactly as a SIGKILL would. Phase 2 restarts a fresh server from
//! the same data directory, verifies that recovery reproduced the
//! acknowledged state bit for bit (including the per-device ε ledger), and
//! finishes the experiment against the restarted server.
//!
//! Run with: `cargo run --release --example durable_restart`
//! (CI runs this as the crash/restart smoke step; it exits non-zero on any
//! recovery mismatch.)

use crowd_ml::core::config::ServerConfig;
use crowd_ml::core::device::CheckinPayload;
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::linalg::Vector;
use crowd_ml::net::{DeviceClient, NetServer};
use crowd_ml::proto::auth::{AuthToken, TokenRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 12;
const CLASSES: usize = 4;
const DEVICES: u64 = 6;
const CHECKINS: usize = 60;
const CRASH_AFTER: usize = 25;
const SECRET: u64 = 0xFEED;

fn model() -> MulticlassLogistic {
    MulticlassLogistic::new(DIM, CLASSES).expect("model")
}

fn payloads() -> Vec<CheckinPayload> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..CHECKINS)
        .map(|step| CheckinPayload {
            device_id: step as u64 % DEVICES,
            checkout_iteration: step as u64,
            nonce: 0,
            gradient: Vector::from_vec(
                (0..DIM * CLASSES)
                    .map(|_| rng.gen_range(-0.5..0.5))
                    .collect(),
            )
            .into(),
            num_samples: 10,
            error_count: 1,
            label_counts: vec![3, 3, 2, 2],
        })
        .collect()
}

fn drive(addr: std::net::SocketAddr, slice: &[CheckinPayload]) {
    for p in slice {
        let client =
            DeviceClient::builder(addr, p.device_id, AuthToken::derive(p.device_id, SECRET))
                .build();
        let outcome = client.checkin(p).expect("checkin over TCP");
        assert!(outcome.applied(), "checkin must be accepted");
    }
}

fn main() {
    let data_dir = std::env::temp_dir().join(format!("crowd-ml-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let config = ServerConfig::new()
        .with_rate_constant(1.0)
        .with_budget(0.5, f64::INFINITY)
        .with_data_dir(&data_dir)
        .with_snapshot_every(8);
    let stream = payloads();

    println!("Phase 1: durable server, {CRASH_AFTER} checkins, then SIGKILL-style crash");
    let server = NetServer::start(
        model(),
        config.clone(),
        TokenRegistry::with_derived_tokens(DEVICES, SECRET),
    )
    .expect("start durable server");
    drive(server.addr(), &stream[..CRASH_AFTER]);
    let iteration_at_kill = server.iteration();
    let params_at_kill = server.params();
    let ledger_at_kill = server.budget_ledger();
    assert_eq!(iteration_at_kill, CRASH_AFTER as u64);
    server.kill();
    println!("  killed at iteration {iteration_at_kill} (no flush, no checkpoint)");

    println!("Phase 2: restart from {}", data_dir.display());
    let server = NetServer::start(
        model(),
        config,
        TokenRegistry::with_derived_tokens(DEVICES, SECRET),
    )
    .expect("restart from data dir");
    let report = server
        .recovery_report()
        .expect("durable server has a report");
    println!(
        "  recovered: snapshot={}, replayed {} WAL epochs, torn tail={}",
        report.from_snapshot, report.replayed_epochs, report.torn_tail
    );
    assert!(report.recovered(), "restart must find prior state");
    assert_eq!(
        server.iteration(),
        iteration_at_kill,
        "iteration must survive"
    );
    assert_eq!(
        server.params().as_slice(),
        params_at_kill.as_slice(),
        "parameters must be bitwise identical after recovery"
    );
    assert_eq!(
        server.budget_ledger(),
        ledger_at_kill,
        "ε ledger must survive"
    );

    drive(server.addr(), &stream[CRASH_AFTER..]);
    assert_eq!(server.iteration(), CHECKINS as u64);
    println!(
        "  experiment completed: {} iterations, {} devices in the ε ledger",
        server.iteration(),
        server.budget_ledger().len()
    );

    // crowd-scope: scrape the live server's metric registry over the wire
    // (the same authenticated admin message an operator would send) and dump
    // it so the CI smoke step can grep the catalogue and archive it.
    let scraper = DeviceClient::builder(server.addr(), 0, AuthToken::derive(0, SECRET)).build();
    let scraped = scraper.scrape_metrics().expect("metrics scrape over TCP");
    let counter = |name: &str| {
        scraped
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    // The post-restart incarnation applied the remaining checkins durably.
    assert_eq!(
        counter("checkins_applied"),
        (CHECKINS - CRASH_AFTER) as u64,
        "scrape must report this incarnation's applied checkins"
    );
    assert!(counter("wal_appends") > 0, "durable path must hit the WAL");
    println!("--- metrics scrape (post-restart server, over TCP) ---");
    for (name, value) in &scraped.counters {
        println!("counter {name} {value}");
    }
    for (name, value) in &scraped.gauges {
        println!("gauge {name} {value}");
    }
    for h in &scraped.histograms {
        println!(
            "hist {} count={} sum={} max={} p50={} p90={} p99={} p999={}",
            h.name, h.count, h.sum, h.max, h.p50, h.p90, h.p99, h.p999
        );
    }
    println!("--- end metrics scrape ---");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("OK: crash, bitwise recovery, and resumed training all verified");
}
