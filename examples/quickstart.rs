//! Quickstart: learn a private classifier from a simulated crowd of devices.
//!
//! Generates a small synthetic classification task, distributes it across 20
//! devices, trains with Crowd-ML under a total privacy budget of ε = 1 per
//! checkin, and compares the result against the non-private centralized batch
//! baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use crowd_ml::core::config::PrivacyConfig;
use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_ml::data::synthetic::GaussianMixtureSpec;

fn main() {
    let spec = GaussianMixtureSpec::new(16, 5)
        .with_train_size(4000)
        .with_test_size(1000)
        .with_mean_scale(2.0)
        .with_noise_std(0.7);

    let private_config = ExperimentConfig::builder()
        .devices(20)
        .minibatch(20)
        .passes(2.0)
        .privacy(PrivacyConfig::with_total_epsilon(1.0))
        .rate_constant(2.0)
        .eval_points(10)
        .seed(7)
        .build();
    let private = CrowdMlExperiment::gaussian_mixture(spec.clone(), private_config);

    let non_private_config = ExperimentConfig::builder()
        .devices(20)
        .minibatch(1)
        .passes(2.0)
        .rate_constant(2.0)
        .eval_points(10)
        .seed(7)
        .build();
    let non_private = CrowdMlExperiment::gaussian_mixture(spec, non_private_config);

    println!("Crowd-ML quickstart: 5-class synthetic task, 20 devices");
    println!("========================================================");

    let outcome = non_private.run().expect("non-private run");
    println!(
        "Crowd-ML, non-private (b=1):        test error {:.3} after {} server updates",
        outcome.final_test_error(),
        outcome.server_iterations
    );

    let outcome = private.run().expect("private run");
    println!(
        "Crowd-ML, eps=1 per checkin (b=20): test error {:.3} after {} server updates",
        outcome.final_test_error(),
        outcome.server_iterations
    );

    let batch_error = non_private.run_central_batch().expect("central batch");
    println!("Centralized batch (non-private):    test error {batch_error:.3}");

    println!();
    println!("Error curve of the private run (iteration, test error):");
    for point in private.run().expect("private rerun").curve.points() {
        println!("  {:>6}  {:.3}", point.iteration, point.error);
    }
}
