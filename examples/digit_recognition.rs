//! Digit recognition in a simulated environment (§V-C of the paper).
//!
//! Compares the three approaches of Fig. 4 on the MNIST-like workload (50-D,
//! 10 classes, distributed over many devices):
//!
//! * Centralized (batch) — pooled data, batch training;
//! * Crowd-ML (SGD) — distributed incremental learning with checkouts/checkins;
//! * Decentralized (SGD) — every device learns alone on its own few samples.
//!
//! Then repeats Crowd-ML with the Fig. 5 privacy level (ε⁻¹ = 0.1) at minibatch
//! sizes 1 and 20 to show the privacy/minibatch trade-off.
//!
//! Run with: `cargo run --release --example digit_recognition`

use crowd_ml::core::config::PrivacyConfig;
use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};

fn main() {
    // 5% of the paper-scale dataset keeps this example under a minute; pass-through
    // parameters otherwise match §V-C.
    let scale = 0.05;
    let devices = 100;

    let base = ExperimentConfig::builder()
        .devices(devices)
        .minibatch(1)
        .passes(1.0)
        .rate_constant(1.0)
        .eval_points(10)
        .seed(11)
        .build();
    let experiment = CrowdMlExperiment::mnist_like(scale, base);

    println!("MNIST-like digit recognition, {devices} devices (scale {scale})");
    println!("==========================================================");

    let batch_error = experiment.run_central_batch().expect("central batch");
    println!("Central (batch), no privacy:      test error {batch_error:.3}");

    let crowd = experiment.run().expect("crowd run");
    println!(
        "Crowd-ML (SGD, b=1), no privacy:  test error {:.3}",
        crowd.final_test_error()
    );

    let decentral = experiment.run_decentralized(20).expect("decentralized");
    println!(
        "Decentralized (SGD), no privacy:  test error {:.3}",
        decentral.final_error().unwrap_or(1.0)
    );

    println!();
    println!("With local differential privacy (eps^-1 = 0.1):");
    for &b in &[1usize, 20] {
        let config = ExperimentConfig::builder()
            .devices(devices)
            .minibatch(b)
            .passes(1.0)
            .privacy(PrivacyConfig::from_inverse_epsilon(0.1).expect("privacy"))
            .rate_constant(1.0)
            .eval_points(10)
            .seed(11)
            .build();
        let outcome = CrowdMlExperiment::mnist_like(scale, config)
            .run()
            .expect("private crowd run");
        println!(
            "  Crowd-ML (SGD, b={b:>2}):          test error {:.3}",
            outcome.final_test_error()
        );
    }
    println!();
    println!("Larger minibatches absorb the Laplace noise (Eq. 13), so b=20 recovers most");
    println!("of the non-private accuracy while keeping the same per-sample privacy level.");
}
