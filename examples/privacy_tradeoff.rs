//! Privacy/accuracy/minibatch trade-off sweep (the analysis of §IV-A).
//!
//! Sweeps the per-checkin privacy budget ε and the minibatch size b on the
//! MNIST-like workload and prints the resulting test errors, illustrating
//! Eq. 13: the Laplace noise contributes `32 D/(b ε_g)²` to the gradient variance,
//! so doubling b buys the same accuracy at half the ε.
//!
//! Run with: `cargo run --release --example privacy_tradeoff`

use crowd_ml::core::config::PrivacyConfig;
use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};

fn main() {
    let scale = 0.03;
    let devices = 100;
    let epsilons = [f64::INFINITY, 100.0, 10.0, 1.0];
    let minibatches = [1usize, 10, 20];

    println!("Privacy / minibatch sweep on the MNIST-like workload ({devices} devices)");
    println!();
    print!("{:>12}", "eps \\ b");
    for &b in &minibatches {
        print!("{b:>10}");
    }
    println!();

    for &eps in &epsilons {
        let label = if eps.is_infinite() {
            "non-private".to_string()
        } else {
            format!("{eps}")
        };
        print!("{label:>12}");
        for &b in &minibatches {
            let privacy = if eps.is_infinite() {
                PrivacyConfig::non_private()
            } else {
                PrivacyConfig::with_total_epsilon(eps)
            };
            let config = ExperimentConfig::builder()
                .devices(devices)
                .minibatch(b)
                .passes(1.0)
                .privacy(privacy)
                .rate_constant(1.0)
                .eval_points(5)
                .seed(23)
                .build();
            let outcome = CrowdMlExperiment::mnist_like(scale, config)
                .run()
                .expect("sweep run");
            print!("{:>10.3}", outcome.final_test_error());
        }
        println!();
    }

    println!();
    println!("Reading the table row-wise: smaller eps (stronger privacy) hurts accuracy.");
    println!("Reading it column-wise: a larger minibatch recovers the loss, as predicted");
    println!("by the O(1/b) noise analysis of Section IV-A in the paper.");
}
