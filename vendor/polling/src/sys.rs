//! Raw libc-symbol bindings for the two poller backends.
//!
//! `std` already links libc, so the symbols below resolve without adding any
//! dependency; this module merely declares the prototypes. All `unsafe` in
//! the workspace is confined to this file, behind small safe wrappers that
//! own their file descriptors and validate every return code.

use std::io;
use std::os::fd::RawFd;

use core::ffi::{c_int, c_uint, c_ulong, c_void};

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLONESHOT: u32 = 1 << 30;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

const EINTR: i32 = 4;

/// Largest batch of events pulled from the kernel per `epoll_wait` call.
const EVENT_BATCH: usize = 256;

// `struct epoll_event` is packed on x86 so the 64-bit data member is not
// 8-aligned; other Linux ABIs use natural alignment.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Mirror of `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// An owned file descriptor, closed on drop.
#[derive(Debug)]
pub struct Fd(RawFd);

impl Drop for Fd {
    fn drop(&mut self) {
        // Nothing useful to do with a close error during teardown.
        unsafe {
            close(self.0);
        }
    }
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<Fd> {
    let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(Fd(fd))
}

/// Adds/modifies/removes `fd` in the epoll set.
pub fn epoll_ctl_op(epfd: &Fd, op: c_int, fd: RawFd, flags: u32, key: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events: flags,
        data: key,
    };
    check(unsafe { epoll_ctl(epfd.0, op, fd, &mut ev) })?;
    Ok(())
}

/// Waits for events, retrying on EINTR. Returns `(key, flags)` pairs.
pub fn epoll_wait_events(epfd: &Fd, timeout_ms: i32) -> io::Result<Vec<(u64, u32)>> {
    let mut buf = [EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
    loop {
        let n = unsafe { epoll_wait(epfd.0, buf.as_mut_ptr(), EVENT_BATCH as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            return Err(err);
        }
        // Copy out of the (potentially packed) kernel structs.
        return Ok(buf[..n as usize]
            .iter()
            .map(|ev| {
                let data = ev.data;
                let events = ev.events;
                (data, events)
            })
            .collect());
    }
}

/// Builds a `pollfd` entry with the requested interest.
pub fn pollfd(fd: RawFd, readable: bool, writable: bool) -> PollFd {
    let mut events = 0i16;
    if readable {
        events |= POLLIN;
    }
    if writable {
        events |= POLLOUT;
    }
    PollFd {
        fd,
        events,
        revents: 0,
    }
}

/// A `pollfd` entry waiting for readability.
pub fn pollfd_readable(fd: RawFd) -> PollFd {
    pollfd(fd, true, false)
}

/// Decodes a fired `pollfd` entry into `(fd, readable, writable)`, or `None`
/// if it did not fire.
pub fn pollfd_fired(pfd: &PollFd) -> Option<(RawFd, bool, bool)> {
    if pfd.revents == 0 {
        return None;
    }
    let readable = pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0;
    let writable = pfd.revents & (POLLOUT | POLLHUP | POLLERR) != 0;
    Some((pfd.fd, readable, writable))
}

/// `poll(2)` over a mutable pollfd slice, retrying on EINTR.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            return Err(err);
        }
        return Ok(n as usize);
    }
}

/// A cross-thread wakeup primitive backed by a nonblocking `eventfd`.
#[derive(Debug)]
pub struct Notifier {
    fd: Fd,
}

impl Notifier {
    pub fn new() -> io::Result<Notifier> {
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Notifier { fd: Fd(fd) })
    }

    pub fn fd(&self) -> RawFd {
        self.fd.0
    }

    /// Increments the eventfd counter, waking any poller that includes it.
    /// Saturation (EAGAIN at u64::MAX-1 pending notifies) is impossible in
    /// practice and would only mean "already signalled", so errors are
    /// swallowed.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd.0, (&one as *const u64).cast::<c_void>(), 8);
        }
    }

    /// Resets the counter after a wakeup. EAGAIN (not signalled) is fine.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(self.fd.0, (&mut buf as *mut u64).cast::<c_void>(), 8);
        }
    }
}
