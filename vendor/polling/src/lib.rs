//! Offline API-compatible subset of the `polling` crate (vendored shim).
//!
//! A minimal portable readiness poller: register sockets with a [`Poller`],
//! declare read/write interest per source, and [`Poller::wait`] for the kernel
//! to report which sources are ready. Two backends are provided:
//!
//! * **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait` with
//!   `EPOLLONESHOT`, scaling to tens of thousands of registered sockets.
//! * **poll(2)** (any unix): a scalar fallback that rebuilds a `pollfd` array
//!   per wait. O(n) per call, but dependency-free and good enough for small
//!   registrations or systems without epoll.
//!
//! Semantics match the real `polling` crate where it matters to callers:
//!
//! * **Oneshot delivery.** After an event is reported for a source, that
//!   source's interest is cleared; call [`Poller::modify`] to re-arm it. This
//!   makes "stop reading from this connection" (backpressure) the *default*
//!   state — a reactor re-arms exactly when it wants more data.
//! * **Cross-thread wakeup.** [`Poller::notify`] interrupts a concurrent
//!   [`Poller::wait`] from any thread (an `eventfd` is part of every
//!   registration set); the interrupted wait simply reports zero events.
//! * **Level-triggered readiness.** If bytes are already buffered when read
//!   interest is armed, the next wait reports the source immediately.
//!
//! This shim is intentionally the only place in the workspace that contains
//! `unsafe` code (raw `extern "C"` libc-symbol bindings); everything under
//! `crates/` keeps `#![forbid(unsafe_code)]`.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

mod sys;

/// Which kernel interface a [`Poller`] is using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` with oneshot delivery.
    Epoll,
    /// Portable `poll(2)` scan with a registry rebuilt per wait.
    Poll,
}

/// Interest in, or readiness of, a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back with readiness events.
    pub key: usize,
    /// Readable (or peer-closed / errored, which unblocks reads).
    pub readable: bool,
    /// Writable (or errored, which unblocks writes).
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both readability and writability.
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: the source stays registered but reports nothing until
    /// re-armed with [`Poller::modify`]. This is the parked/throttled state.
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A buffer of readiness events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    list: Vec<Event>,
}

impl Events {
    /// Creates an empty event buffer.
    pub fn new() -> Self {
        Events { list: Vec::new() }
    }

    /// Iterates over the events from the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    /// Clears the buffer (done automatically at the start of each wait).
    pub fn clear(&mut self) {
        self.list.clear();
    }

    /// Number of events from the last wait.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the last wait reported no events.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// Interest bits kept by the poll(2) registry.
#[derive(Debug, Clone, Copy)]
struct Interest {
    key: usize,
    readable: bool,
    writable: bool,
}

enum Impl {
    Epoll(EpollPoller),
    Poll(PollPoller),
}

/// A readiness poller over a set of registered sources.
pub struct Poller {
    imp: Impl,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

impl Poller {
    /// Creates a poller on the preferred backend: epoll where available,
    /// falling back to poll(2) if epoll cannot be set up. The environment
    /// variable `CROWD_POLLER=poll` forces the fallback (used by CI to
    /// exercise both backends).
    pub fn new() -> io::Result<Poller> {
        if std::env::var("CROWD_POLLER").as_deref() == Ok("poll") {
            return Poller::with_backend(Backend::Poll);
        }
        match EpollPoller::new() {
            Ok(ep) => Ok(Poller {
                imp: Impl::Epoll(ep),
            }),
            Err(_) => Poller::with_backend(Backend::Poll),
        }
    }

    /// Creates a poller on a specific backend.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let imp = match backend {
            Backend::Epoll => Impl::Epoll(EpollPoller::new()?),
            Backend::Poll => Impl::Poll(PollPoller::new()?),
        };
        Ok(Poller { imp })
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            Impl::Epoll(_) => Backend::Epoll,
            Impl::Poll(_) => Backend::Poll,
        }
    }

    /// Registers a source with the given interest. The source must be in
    /// nonblocking mode, must stay open until [`Poller::delete`], and each
    /// file descriptor may be added at most once.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        match &self.imp {
            Impl::Epoll(ep) => ep.add(source.as_raw_fd(), interest),
            Impl::Poll(pp) => pp.add(source.as_raw_fd(), interest),
        }
    }

    /// Re-arms (or changes) the interest of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        match &self.imp {
            Impl::Epoll(ep) => ep.modify(source.as_raw_fd(), interest),
            Impl::Poll(pp) => pp.modify(source.as_raw_fd(), interest),
        }
    }

    /// Unregisters a source. Call this before closing the descriptor.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.imp {
            Impl::Epoll(ep) => ep.delete(source.as_raw_fd()),
            Impl::Poll(pp) => pp.delete(source.as_raw_fd()),
        }
    }

    /// Blocks until at least one source is ready, `timeout` elapses, or
    /// [`Poller::notify`] is called. Returns the number of events written to
    /// `events` (0 on timeout or notify).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.imp {
            Impl::Epoll(ep) => ep.wait(events, timeout),
            Impl::Poll(pp) => pp.wait(events, timeout),
        }
    }

    /// Wakes a concurrent [`Poller::wait`] from any thread. Notifications
    /// coalesce: many notifies before a wait produce one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        match &self.imp {
            Impl::Epoll(ep) => ep.notifier.signal(),
            Impl::Poll(pp) => pp.notifier.signal(),
        }
        Ok(())
    }
}

/// Milliseconds for the kernel timeout argument, rounding up so sub-ms
/// timeouts do not busy-spin as zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d
                .as_secs()
                .saturating_mul(1000)
                .saturating_add(u64::from(d.subsec_nanos()).div_ceil(1_000_000));
            ms.min(i32::MAX as u64) as i32
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend
// ---------------------------------------------------------------------------

struct EpollPoller {
    epfd: sys::Fd,
    notifier: sys::Notifier,
}

impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        let epfd = sys::epoll_create()?;
        let notifier = sys::Notifier::new()?;
        // The notifier is level-triggered and *not* oneshot: it never needs
        // re-arming, only draining.
        sys::epoll_ctl_op(
            &epfd,
            sys::EPOLL_CTL_ADD,
            notifier.fd(),
            sys::EPOLLIN,
            NOTIFY_KEY as u64,
        )?;
        Ok(EpollPoller { epfd, notifier })
    }

    fn flags(interest: Event) -> u32 {
        let mut flags = sys::EPOLLONESHOT | sys::EPOLLRDHUP;
        if interest.readable {
            flags |= sys::EPOLLIN;
        }
        if interest.writable {
            flags |= sys::EPOLLOUT;
        }
        flags
    }

    fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        sys::epoll_ctl_op(
            &self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Self::flags(interest),
            interest.key as u64,
        )
    }

    fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        sys::epoll_ctl_op(
            &self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            Self::flags(interest),
            interest.key as u64,
        )
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl_op(&self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let fired = sys::epoll_wait_events(&self.epfd, timeout_ms(timeout))?;
        for (key, flags) in fired {
            if key == NOTIFY_KEY as u64 {
                self.notifier.drain();
                continue;
            }
            let readable =
                flags & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0;
            let writable = flags & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0;
            events.list.push(Event {
                key: key as usize,
                readable,
                writable,
            });
        }
        Ok(events.list.len())
    }
}

/// Internal key reserved for the notifier; user keys of this value would be
/// indistinguishable, so `usize::MAX` is documented as reserved.
const NOTIFY_KEY: usize = usize::MAX;

// ---------------------------------------------------------------------------
// poll(2) fallback backend
// ---------------------------------------------------------------------------

struct PollPoller {
    notifier: sys::Notifier,
    /// fd -> interest, ordered by fd so the scan (and therefore event order)
    /// is deterministic. Vendor code is outside the audit's lock-rank scan;
    /// this mutex is a leaf and is never held across a syscall that blocks.
    registry: Mutex<std::collections::BTreeMap<RawFd, Interest>>,
}

impl PollPoller {
    fn new() -> io::Result<PollPoller> {
        Ok(PollPoller {
            notifier: sys::Notifier::new()?,
            registry: Mutex::new(std::collections::BTreeMap::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::BTreeMap<RawFd, Interest>> {
        self.registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        let mut reg = self.lock();
        if reg.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        reg.insert(
            fd,
            Interest {
                key: interest.key,
                readable: interest.readable,
                writable: interest.writable,
            },
        );
        Ok(())
    }

    fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        let mut reg = self.lock();
        match reg.get_mut(&fd) {
            Some(slot) => {
                *slot = Interest {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                };
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        match self.lock().remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        // Snapshot the registry so the syscall runs without the lock held.
        // Concurrent add/modify from other threads takes effect on the next
        // wait; callers pair such changes with `notify()` (as the real crate
        // requires) so the current wait is interrupted and rebuilt.
        let mut fds: Vec<sys::PollFd> = vec![sys::pollfd_readable(self.notifier.fd())];
        {
            let reg = self.lock();
            for (&fd, interest) in reg.iter() {
                if interest.readable || interest.writable {
                    fds.push(sys::pollfd(fd, interest.readable, interest.writable));
                }
            }
        }
        let n = sys::poll_fds(&mut fds, timeout_ms(timeout))?;
        if n == 0 {
            return Ok(0);
        }
        if sys::pollfd_fired(&fds[0]).is_some() {
            self.notifier.drain();
        }
        let mut reg = self.lock();
        for pfd in &fds[1..] {
            let Some((fd, readable, writable)) = sys::pollfd_fired(pfd) else {
                continue;
            };
            let Some(interest) = reg.get_mut(&fd) else {
                continue; // deleted concurrently
            };
            events.list.push(Event {
                key: interest.key,
                readable,
                writable,
            });
            // Oneshot: clear interest until the caller re-arms.
            interest.readable = false;
            interest.writable = false;
        }
        Ok(events.list.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn backends() -> Vec<Backend> {
        vec![Backend::Epoll, Backend::Poll]
    }

    #[test]
    fn readable_event_is_oneshot_and_rearmable() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut a, b) = pair();
            poller.add(&b, Event::readable(7)).unwrap();

            a.write_all(b"x").unwrap();
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let fired: Vec<Event> = events.iter().collect();
            assert_eq!(fired.len(), 1, "{backend:?}");
            assert_eq!(fired[0].key, 7);
            assert!(fired[0].readable);

            // Oneshot: without re-arming, the still-unread byte reports
            // nothing more.
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: oneshot interest re-fired");

            // Re-arm: the buffered byte is reported again (level-triggered).
            poller.modify(&b, Event::readable(7)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: re-arm did not restore");
            poller.delete(&b).unwrap();
        }
    }

    #[test]
    fn writable_reported_for_fresh_socket() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = pair();
            poller.add(&a, Event::writable(3)).unwrap();
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let fired: Vec<Event> = events.iter().collect();
            assert_eq!(fired.len(), 1, "{backend:?}");
            assert!(fired[0].writable);
            poller.delete(&a).unwrap();
        }
    }

    #[test]
    fn notify_wakes_wait_with_zero_events() {
        for backend in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let waker = std::sync::Arc::clone(&poller);
            let waiter = std::thread::spawn(move || {
                let mut events = Events::new();
                poller
                    .wait(&mut events, Some(Duration::from_secs(30)))
                    .unwrap()
            });
            // Give the waiter a moment to block, then wake it.
            std::thread::sleep(Duration::from_millis(20));
            waker.notify().unwrap();
            assert_eq!(waiter.join().unwrap(), 0, "{backend:?}");
        }
    }

    #[test]
    fn notifications_coalesce() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            poller.notify().unwrap();
            poller.notify().unwrap();
            poller.notify().unwrap();
            let mut events = Events::new();
            // All three notifies drain in one wait...
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.is_empty());
            // ...so the next wait times out instead of waking again.
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: stale notification");
        }
    }

    #[test]
    fn none_interest_parks_and_delete_unregisters() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (mut a, b) = pair();
            poller.add(&b, Event::none(1)).unwrap();
            a.write_all(b"data").unwrap();
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: parked source fired");

            poller.modify(&b, Event::readable(1)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");

            poller.delete(&b).unwrap();
            assert!(poller.delete(&b).is_err(), "{backend:?}: double delete");
        }
    }

    #[test]
    fn peer_close_reports_readable() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, mut b) = pair();
            poller.add(&b, Event::readable(9)).unwrap();
            drop(a);
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let fired: Vec<Event> = events.iter().collect();
            assert_eq!(fired.len(), 1, "{backend:?}");
            assert!(fired[0].readable, "{backend:?}: close must unblock reads");
            // And the read then observes EOF.
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).unwrap(), 0);
            poller.delete(&b).unwrap();
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (_a, b) = pair();
            poller.add(&b, Event::readable(2)).unwrap();
            let mut events = Events::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(25)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}");
            poller.delete(&b).unwrap();
        }
    }

    #[test]
    fn default_backend_resolves() {
        let poller = Poller::new().unwrap();
        // On this CI box epoll should be available; either way the poller
        // must function.
        let (mut a, b) = pair();
        poller.add(&b, Event::readable(4)).unwrap();
        a.write_all(b"ping").unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "{:?}", poller.backend());
    }
}
