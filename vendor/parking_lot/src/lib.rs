//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives to provide `parking_lot`'s non-poisoning,
//! `Result`-free locking API — the only part of the crate this workspace uses.
//! A thread that panics while holding the lock simply releases it; the data is
//! still handed out (matching `parking_lot`, which has no poisoning at all).

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with the same non-poisoning contract.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_is_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
