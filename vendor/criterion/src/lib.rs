//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! Provides the macro/type surface the bench suite uses (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `BatchSize`, `black_box`) with a small honest harness behind it: each
//! benchmark is warmed up briefly, then timed over an adaptively chosen
//! iteration count, and the mean ns/iter is printed. No statistics, plots, or
//! comparison against saved baselines. When invoked by `cargo test` (which
//! passes `--test` to `harness = false` targets) every benchmark runs exactly
//! one iteration as a smoke test.
//!
//! Two environment hooks serve CI:
//! * `CRITERION_QUICK=1` shrinks the warm-up/measure windows ~10×, for smoke
//!   runs where the trend matters more than the confidence interval.
//! * `BENCH_JSON=path` appends one JSON line per benchmark
//!   (`{"name": …, "ns_per_iter": …}`) to `path`, so CI can upload machine-
//!   readable results as an artifact and track the perf trajectory across PRs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// How long each benchmark is measured for (after warm-up).
fn measure_target() -> Duration {
    if quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    }
}

fn warmup_target() -> Duration {
    if quick_mode() {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(50)
    }
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Hint for how to amortize per-batch setup; ignored by this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed over by benchmark bodies.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher {
            test_mode,
            last_ns: f64::NAN,
        }
    }

    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.last_ns = f64::NAN;
            return;
        }
        // Warm up and estimate a per-iteration cost. The env-derived targets
        // are read once up front: an env lookup per loop iteration would
        // dominate nanosecond-scale routines and skew the iteration count.
        let warmup = warmup_target();
        let measure = measure_target();
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((measure.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }

    /// Times `routine` over values produced by `setup`, excluding setup cost
    /// from the iteration count but not from wall time (a simplification the
    /// printed numbers note implicitly by being per-routine-call).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.last_ns = f64::NAN;
            return;
        }
        let warmup = warmup_target();
        let measure = measure_target();
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((measure.as_secs_f64() / per_iter).ceil() as u64).max(1);
        // Materialize inputs in bounded batches (like real criterion's
        // BatchSize chunking) so a cheap routine with an expensive setup
        // cannot force tens of thousands of live inputs at once. Setup time
        // is excluded from the measurement by timing each batch separately.
        const MAX_BATCH: u64 = 256;
        let mut measured = Duration::ZERO;
        let mut remaining = iters;
        while remaining > 0 {
            let batch_len = remaining.min(MAX_BATCH);
            let inputs: Vec<I> = (0..batch_len).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            measured += start.elapsed();
            remaining -= batch_len;
        }
        self.last_ns = measured.as_secs_f64() * 1e9 / iters as f64;
    }

    /// Like `iter_batched` but the routine borrows its input mutably.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.last_ns.is_nan() {
        println!("bench {name:<50} ok (test mode)");
        return;
    }
    if bencher.last_ns >= 1e6 {
        println!("bench {name:<50} {:>12.3} ms/iter", bencher.last_ns / 1e6);
    } else if bencher.last_ns >= 1e3 {
        println!("bench {name:<50} {:>12.3} us/iter", bencher.last_ns / 1e3);
    } else {
        println!("bench {name:<50} {:>12.1} ns/iter", bencher.last_ns);
    }
    append_json(name, bencher.last_ns);
}

/// When `BENCH_JSON` names a file, appends one `{"name", "ns_per_iter"}` line
/// per benchmark so CI can collect machine-readable results.
fn append_json(name: &str, ns: f64) {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    use std::io::Write;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(file, "{{\"name\":\"{escaped}\",\"ns_per_iter\":{ns:.1}}}");
    }
}

/// Entry point collecting benchmarks, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: test_mode(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.test_mode);
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion.test_mode);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Runs a parameterized benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.test_mode);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Sets the measurement time; accepted and ignored by this shim.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the sample count; accepted and ignored by this shim.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
