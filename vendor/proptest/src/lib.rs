//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! Provides the `proptest!` macro, range/`any`/`collection::vec` strategies,
//! `prop_assume!`, and `prop_assert*!` — the surface the workspace's property
//! tests use. Cases are sampled from a deterministic RNG seeded from the test
//! name, so failures reproduce across runs. Unlike real proptest there is no
//! shrinking: a failing case panics with the sampled inputs left to the
//! assertion message.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected samples (`prop_assume!` failures) tolerated before
    /// the test aborts, mirroring proptest's global rejection cap.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Strategy producing any value of `T` (uniform over the type's domain).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Marker returned (via `Err`) by `prop_assume!` to reject the current case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Builds the deterministic RNG for a named test. Seeded from an FNV-1a hash
/// of the fully qualified test name: stable across runs and processes.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig,
    };

    pub mod prop {
        //! Namespace mirror of `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// Defines property tests. Syntax (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0usize..5, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __cases_done: u32 = 0;
                let mut __rejects: u32 = 0;
                while __cases_done < __config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                    )+
                    // The body runs inside a closure so `prop_assume!` can
                    // bail out with `Err(Rejected)` without counting the case.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::Rejected> = (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        Ok(()) => __cases_done += 1,
                        Err($crate::Rejected) => {
                            __rejects += 1;
                            if __rejects > __config.max_global_rejects {
                                panic!(
                                    "proptest: too many prop_assume! rejections ({})",
                                    __rejects
                                );
                            }
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 1u64..100,
            y in -5i64..=5,
            f in 0.25f64..4.0,
            v in prop::collection::vec(0usize..3, 1..10),
            b in any::<bool>(),
            w in any::<u64>(),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..4.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 3));
            let _ = (b, w);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
