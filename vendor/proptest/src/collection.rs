//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Admissible vector lengths: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy generating `Vec<T>` from an element strategy and a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a vector strategy, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
