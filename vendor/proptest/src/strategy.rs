//! The [`Strategy`] trait and implementations for ranges and `any`.

use crate::Any;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value from the deterministic test RNG.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut StdRng) -> i64 {
        rng.gen()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        // Spread over a wide symmetric range rather than raw bit patterns so
        // tests never see NaN/Inf unless they ask for them explicitly.
        rng.gen_range(-1e12f64..1e12)
    }
}

/// Strategies may be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Tuples of strategies sample componentwise, left to right (matching real
/// proptest's tuple composition).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}
