//! Distributions: the `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over its domain for
/// integers and booleans, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Range types `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range. Panics if empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Samples uniformly from `[0, span)` without modulo bias.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Widening-multiply rejection (Lemire). The zone is the largest
        // multiple of `span` that fits in 2^64.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo <= zone {
                return hi;
            }
        }
    }

    macro_rules! uniform_int_impl {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(sample_below(rng, span) as $ty)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full-width range: every value is valid.
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(sample_below(rng, span as u64) as $ty)
                }
            }
        )*};
    }

    uniform_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float_impl {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let unit = (rng.next_u64() >> 11) as $ty
                        * (1.0 / (1u64 << 53) as $ty);
                    let value = self.start + unit * (self.end - self.start);
                    // Guard against rounding up to the excluded endpoint.
                    if value < self.end { value } else { self.start }
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let unit = (rng.next_u64() >> 11) as $ty
                        * (1.0 / ((1u64 << 53) - 1) as $ty);
                    start + unit * (end - start)
                }
            }
        )*};
    }

    uniform_float_impl!(f32, f64);
}
