//! Concrete RNG implementations.

use crate::{RngCore, SeedableRng};

/// Deterministic standard RNG: xoshiro256++ (Blackman & Vigna).
///
/// The real `rand::rngs::StdRng` is ChaCha12; this shim trades the exact
/// stream for a much smaller implementation. Everything in the workspace only
/// relies on *reproducibility for a fixed seed*, never on matching upstream
/// `rand`'s byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}

/// Alias used by some callers; identical generator.
pub type SmallRng = StdRng;
