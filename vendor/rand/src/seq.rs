//! Sequence helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Extension methods on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
