//! Vendored, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace ships this minimal deterministic reimplementation of exactly the
//! surface the codebase uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! `fill`. The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is what the workspace's determinism
//! and property tests rely on. Swapping back to the real `rand` crate only
//! requires replacing the `[workspace.dependencies]` path entry.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Low-level source of randomness: object-safe, implemented by concrete RNGs.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanded with SplitMix64 exactly the
    /// way every caller in this workspace expects: same seed, same stream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 seed expander (also used internally by xoshiro seeding).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
