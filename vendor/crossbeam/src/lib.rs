//! Vendored, API-compatible subset of the `crossbeam` crate.
//!
//! Only [`channel`] is provided, backed by `std::sync::mpsc`. The workspace
//! uses multi-producer/single-consumer topology exclusively (device threads
//! fanning in to one collector), which mpsc covers exactly.

pub mod channel {
    //! MPMC-style channel API over `std::sync::mpsc`.

    use std::sync::mpsc;

    /// Sending half; clonable for fan-in.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    impl<T> Sender<T> {
        /// Sends a value; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails once every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Creates a "bounded" channel. The mpsc backing is only bounded for
    /// `cap > 0`; a rendezvous channel (`cap == 0`) maps to mpsc's own
    /// zero-capacity sync channel, so semantics match.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (SyncSender { inner: tx }, Receiver { inner: rx })
    }

    /// Sending half of a bounded channel.
    pub struct SyncSender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> SyncSender<T> {
        /// Sends a value, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_then_drain() {
            let (tx, rx) = unbounded::<usize>();
            let mut handles = Vec::new();
            for i in 0..4 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || tx.send(i).unwrap()));
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
