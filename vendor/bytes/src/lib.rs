//! Vendored, API-compatible subset of the `bytes` crate.
//!
//! Implements exactly the surface `crowd-proto`'s codec uses: [`Bytes`],
//! [`BytesMut`], the [`Buf`] cursor trait for `&[u8]`, and the [`BufMut`]
//! writer trait. Backed by plain `Vec<u8>` — no refcounted zero-copy slicing,
//! which nothing in the workspace relies on.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.inner
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

macro_rules! buf_get_le {
    ($($fn:ident -> $ty:ty),* $(,)?) => {
        $(
            /// Reads a little-endian value, advancing past it.
            fn $fn(&mut self) -> $ty {
                let mut raw = [0u8; std::mem::size_of::<$ty>()];
                self.copy_to_slice(&mut raw);
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

/// Read cursor over a byte source. All `get_*` calls panic when the source
/// has fewer bytes than requested, matching upstream `bytes` semantics —
/// callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Borrows the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Returns `true` when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    buf_get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i16_le -> i16,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

macro_rules! buf_put_le {
    ($($fn:ident($ty:ty)),* $(,)?) => {
        $(
            /// Appends a value in little-endian byte order.
            fn $fn(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Write sink for bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    buf_put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i16_le(i16),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }

    /// Appends a whole `f64` slice in little-endian order. Byte-identical to
    /// calling [`BufMut::put_f64_le`] per element; concrete buffers override
    /// it to amortize the per-write capacity check over blocks.
    fn put_f64_slice_le(&mut self, values: &[f64]) {
        for &v in values {
            self.put_f64_le(v);
        }
    }

    /// Appends a whole `i16` slice in little-endian order (same contract as
    /// [`BufMut::put_f64_slice_le`]).
    fn put_i16_slice_le(&mut self, values: &[i16]) {
        for &v in values {
            self.put_i16_le(v);
        }
    }
}

/// Serializes a numeric slice through a stack block, calling `sink` with runs
/// of ready-to-append bytes: one capacity check per block instead of per
/// element, identical bytes.
macro_rules! blocked_put {
    ($values:expr, $width:expr, $sink:expr) => {{
        let mut block = [0u8; 256 * $width];
        for chunk in $values.chunks(256) {
            let mut n = 0;
            for &v in chunk {
                block[n..n + $width].copy_from_slice(&v.to_le_bytes());
                n += $width;
            }
            $sink(&block[..n]);
        }
    }};
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    fn put_f64_slice_le(&mut self, values: &[f64]) {
        self.inner.put_f64_slice_le(values);
    }

    fn put_i16_slice_le(&mut self, values: &[i16]) {
        self.inner.put_i16_slice_le(values);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_f64_slice_le(&mut self, values: &[f64]) {
        self.reserve(values.len() * 8);
        blocked_put!(values, 8, |bytes| self.extend_from_slice(bytes));
    }

    fn put_i16_slice_le(&mut self, values: &[i16]) {
        self.reserve(values.len() * 2);
        blocked_put!(values, 2, |bytes| self.extend_from_slice(bytes));
    }
}

// Forwarding impl matching the real `bytes` crate, so generic writers can be
// handed `&mut buf` without giving up the buffer.
impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }

    fn put_f64_slice_le(&mut self, values: &[f64]) {
        (**self).put_f64_slice_le(values);
    }

    fn put_i16_slice_le(&mut self, values: &[i16]) {
        (**self).put_i16_slice_le(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-12345);
        buf.put_f64_le(-2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 513);
        assert_eq!(cursor.get_u32_le(), 70_000);
        assert_eq!(cursor.get_u64_le(), 1 << 40);
        assert_eq!(cursor.get_i64_le(), -12345);
        assert_eq!(cursor.get_f64_le(), -2.5);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn bulk_slice_writes_match_per_element_writes() {
        // Lengths straddling the 256-element block boundary.
        for len in [0usize, 1, 7, 255, 256, 257, 1000] {
            let f64s: Vec<f64> = (0..len).map(|i| i as f64 * -1.5e-3).collect();
            let i16s: Vec<i16> = (0..len).map(|i| (i as i16).wrapping_mul(-257)).collect();

            let mut per_element: Vec<u8> = vec![0xAA]; // non-empty prefix kept
            for &v in &f64s {
                per_element.put_f64_le(v);
            }
            for &v in &i16s {
                per_element.put_i16_le(v);
            }

            let mut bulk_vec: Vec<u8> = vec![0xAA];
            bulk_vec.put_f64_slice_le(&f64s);
            bulk_vec.put_i16_slice_le(&i16s);
            assert_eq!(bulk_vec, per_element, "Vec<u8> bulk diverged at {len}");

            let mut bulk_bytes = BytesMut::new();
            bulk_bytes.put_u8(0xAA);
            bulk_bytes.put_f64_slice_le(&f64s);
            bulk_bytes.put_i16_slice_le(&i16s);
            assert_eq!(&bulk_bytes[..], &per_element[..], "BytesMut bulk diverged");

            // The forwarding impl must not fall back to the default loop's
            // semantics differing — same bytes through &mut.
            let mut fwd: Vec<u8> = vec![0xAA];
            {
                let r = &mut fwd;
                fn write<B: BufMut>(mut b: B, f: &[f64], q: &[i16]) {
                    b.put_f64_slice_le(f);
                    b.put_i16_slice_le(q);
                }
                write(r, &f64s, &i16s);
            }
            assert_eq!(fwd, per_element, "&mut forwarding diverged at {len}");
        }
    }
}
